//! Kill-and-resume integration tests: a campaign interrupted mid-flight
//! (modeling a crash or SIGKILL between checkpoints) must resume from its
//! on-disk checkpoint and finish with tallies identical to an uninterrupted
//! run of the same campaign.

use std::path::PathBuf;

use swapcodes_core::Scheme;
use swapcodes_gates::units::fxp_add32;
use swapcodes_inject::{
    run_arch_campaign_checkpointed, run_recovery_campaign_checkpointed, run_unit_campaign,
    run_unit_campaign_checkpointed, CampaignConfig, CheckpointConfig, RecoveryCampaignConfig,
};
use swapcodes_workloads::by_name;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swapcodes-ckpt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn arch_campaign_resumes_byte_identically_after_interruption() {
    let w = by_name("kmeans").expect("kmeans workload");
    let trials = 20u64;
    let seed = 0xC0FF_EE00;

    // Reference: one uninterrupted run with no checkpoint directory at all.
    let reference = run_arch_campaign_checkpointed(
        &w,
        Scheme::SwapEcc,
        trials,
        seed,
        &CheckpointConfig {
            dir: None,
            ..CheckpointConfig::default()
        },
    )
    .expect("swap-ecc applies to kmeans");
    assert!(reference.finished);
    assert_eq!(reference.completed, trials);

    // Interrupted twice, resumed from disk each time.
    let dir = scratch_dir("arch");
    let ck = |stop_after: Option<u64>| CheckpointConfig {
        dir: Some(dir.clone()),
        interval: 4,
        stop_after,
        ..CheckpointConfig::default()
    };
    let first = run_arch_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &ck(Some(7)))
        .expect("prepare");
    assert!(!first.finished, "stop_after must interrupt the run");
    assert_eq!(first.completed, 7);

    let second = run_arch_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &ck(Some(9)))
        .expect("prepare");
    assert!(!second.finished);
    assert_eq!(second.completed, 16, "second run resumes at trial 7");

    let last = run_arch_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &ck(None))
        .expect("prepare");
    assert!(last.finished);
    assert_eq!(last.completed, trials);
    assert_eq!(
        last.outcomes, reference.outcomes,
        "resumed tallies diverge from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn arch_checkpoint_for_other_campaign_is_ignored() {
    let w = by_name("kmeans").expect("kmeans workload");
    let dir = scratch_dir("arch-stale");
    let ck = |stop_after: Option<u64>| CheckpointConfig {
        dir: Some(dir.clone()),
        interval: 2,
        stop_after,
        ..CheckpointConfig::default()
    };
    // Leave a half-finished checkpoint behind under seed A...
    let partial =
        run_arch_campaign_checkpointed(&w, Scheme::SwDup, 12, 1, &ck(Some(5))).expect("prepare");
    assert!(!partial.finished);
    // ...then run the same workload/scheme under seed B: the stale file must
    // not be trusted, so the campaign starts from scratch and matches a
    // checkpoint-free run.
    let resumed =
        run_arch_campaign_checkpointed(&w, Scheme::SwDup, 12, 2, &ck(None)).expect("prepare");
    let reference = run_arch_campaign_checkpointed(
        &w,
        Scheme::SwDup,
        12,
        2,
        &CheckpointConfig {
            dir: None,
            ..CheckpointConfig::default()
        },
    )
    .expect("prepare");
    assert!(resumed.finished);
    assert_eq!(resumed.outcomes, reference.outcomes);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint/resume composes with the recovery ladder: a recovery campaign
/// interrupted mid-flight resumes from disk and finishes with tallies *and*
/// recovery-work stats identical to an uninterrupted run — and its on-disk
/// state is mode-tagged, so a plain campaign's checkpoint is never trusted.
#[test]
fn recovery_campaign_resumes_byte_identically_after_interruption() {
    let w = by_name("matmul").expect("matmul workload");
    let trials = 18u64;
    let seed = 0x02EC_04E2u64;
    let rcfg = RecoveryCampaignConfig::default();

    let reference = run_recovery_campaign_checkpointed(
        &w,
        Scheme::SwapEcc,
        trials,
        seed,
        &rcfg,
        &CheckpointConfig {
            dir: None,
            ..CheckpointConfig::default()
        },
    )
    .expect("swap-ecc applies to matmul");
    assert!(reference.finished);
    assert_eq!(reference.completed, trials);
    assert!(
        reference.outcomes.recovered() > 0,
        "campaign must exercise recovery: {:?}",
        reference.outcomes
    );

    let dir = scratch_dir("recover");
    let ck = |stop_after: Option<u64>| CheckpointConfig {
        dir: Some(dir.clone()),
        interval: 3,
        stop_after,
        ..CheckpointConfig::default()
    };
    // Run a *plain* campaign into the same directory first: its checkpoint
    // file is keyed differently and its mode tag is "plain", so the recovery
    // campaign below must start from zero either way.
    let _ = run_arch_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &ck(Some(4)));

    let first =
        run_recovery_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &rcfg, &ck(Some(5)))
            .expect("prepare");
    assert!(!first.finished, "stop_after must interrupt the run");
    assert_eq!(first.completed, 5);

    let second =
        run_recovery_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &rcfg, &ck(Some(6)))
            .expect("prepare");
    assert!(!second.finished);
    assert_eq!(second.completed, 11, "second run resumes at trial 5");

    let last =
        run_recovery_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &rcfg, &ck(None))
            .expect("prepare");
    assert!(last.finished);
    assert_eq!(last.completed, trials);
    assert_eq!(
        last.outcomes, reference.outcomes,
        "resumed tallies diverge from the uninterrupted run"
    );
    assert_eq!(
        last.stats, reference.stats,
        "resumed recovery stats diverge from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unit_campaign_resumes_byte_identically_after_interruption() {
    let unit = fxp_add32();
    let inputs: Vec<[u64; 3]> = (0..40)
        .map(|i| [i * 0x1234_5678 % 0xFFFF_FFFF, i * 999 + 7, 0])
        .collect();
    let cfg = CampaignConfig::default();

    // Reference semantics: the plain (non-checkpointed) campaign driver.
    let reference = run_unit_campaign(&unit, &inputs, &cfg);

    let dir = scratch_dir("unit");
    let ck = |stop_after: Option<u64>| CheckpointConfig {
        dir: Some(dir.clone()),
        interval: 8,
        stop_after,
        ..CheckpointConfig::default()
    };
    let first = run_unit_campaign_checkpointed(&unit, &inputs, &cfg, &ck(Some(13)));
    assert!(!first.finished);
    assert!(first.result.is_none(), "interrupted runs carry no result");
    assert_eq!(first.completed, 13);

    let second = run_unit_campaign_checkpointed(&unit, &inputs, &cfg, &ck(None));
    assert!(second.finished);
    assert_eq!(second.completed, inputs.len() as u64);
    let resumed = second.result.expect("finished runs carry a result");
    assert_eq!(resumed.records, reference.records);
    assert_eq!(resumed.fully_masked_inputs, reference.fully_masked_inputs);
    assert_eq!(resumed.attempts, reference.attempts);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn default_config_reads_checkpoint_dir_from_env() {
    // Safe against the other tests here: they all set `dir` explicitly, so
    // a concurrent default() call never reaches their checkpoint paths.
    std::env::set_var("SWAPCODES_CHECKPOINT_DIR", "/tmp/swapcodes-env-probe");
    let picked = CheckpointConfig::default().dir;
    std::env::remove_var("SWAPCODES_CHECKPOINT_DIR");
    assert_eq!(picked, Some(PathBuf::from("/tmp/swapcodes-env-probe")));
}

#[test]
fn unit_campaign_without_checkpoint_dir_matches_plain_driver() {
    let unit = fxp_add32();
    let inputs: Vec<[u64; 3]> = (0..10).map(|i| [i * 77 + 5, i * 13 + 1, 0]).collect();
    let cfg = CampaignConfig::default();
    let plain = run_unit_campaign(&unit, &inputs, &cfg);
    let run = run_unit_campaign_checkpointed(
        &unit,
        &inputs,
        &cfg,
        &CheckpointConfig {
            dir: None,
            ..CheckpointConfig::default()
        },
    );
    assert!(run.finished);
    let result = run.result.expect("result");
    assert_eq!(result.records, plain.records);
    assert_eq!(result.attempts, plain.attempts);
}
