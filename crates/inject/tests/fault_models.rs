//! Fault-model taxonomy integration tests: mixed-class campaigns over the
//! (workload × scheme) matrix complete with every trial accounted to
//! exactly one class bucket, kill-and-resume preserves the per-class
//! tallies byte-for-byte, a checkpoint written under one fault mix is
//! loudly rejected by a campaign running another, and the stuck-at
//! corruption operator is idempotent by construction (the property that
//! lets the executor re-assert a permanent defect on every access without
//! tracking whether it already fired).
//!
//! The checkpointed driver reads `SWAPCODES_FAULT_MODEL` through
//! [`CampaignOptions::from_env`]; the tests that set it serialize on a
//! process-local mutex so the parallel test runner never observes a
//! half-configured environment. Everything else pins its mix through
//! [`ArchCampaign::prepare_with`] and ignores the environment entirely.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use swapcodes_core::{PredictorSet, Scheme};
use swapcodes_inject::{
    run_arch_campaign_checkpointed, ArchCampaign, CampaignOptions, CheckpointConfig, FaultMix,
};
use swapcodes_sim::{FaultSpec, FaultTarget};
use swapcodes_workloads::by_name;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swapcodes-fmix-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Serialize the tests that mutate `SWAPCODES_FAULT_MODEL` (env vars are
/// process-global; the test runner is multi-threaded).
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII guard: sets the fault-model env var for the scope, restores on drop.
struct MixEnv {
    _guard: MutexGuard<'static, ()>,
}

impl MixEnv {
    fn set(value: &str) -> Self {
        let guard = env_lock();
        std::env::set_var("SWAPCODES_FAULT_MODEL", value);
        Self { _guard: guard }
    }
}

impl Drop for MixEnv {
    fn drop(&mut self) {
        std::env::remove_var("SWAPCODES_FAULT_MODEL");
    }
}

fn mixed(mix: FaultMix) -> CampaignOptions {
    CampaignOptions {
        mix,
        ..CampaignOptions::default()
    }
}

/// The acceptance matrix: three workloads × three scheme families, every
/// trial drawing its class from the equal-weight three-class mix. Each cell
/// must complete without a host panic (a control-state deadlock lands in
/// the hang bucket, a wild store in crash/trap — never an unwind), and the
/// class buckets must sum to the trial count exactly.
#[test]
fn mixed_class_matrix_accounts_every_trial() {
    let trials = 60u64;
    let schemes = [
        Scheme::SwDup,
        Scheme::SwapEcc,
        Scheme::SwapPredict(PredictorSet::MAD),
    ];
    for name in ["matmul", "kmeans", "hspot"] {
        let w = by_name(name).expect("workload");
        for scheme in schemes {
            let campaign =
                ArchCampaign::prepare_with(&w, scheme, 0xF417, mixed(FaultMix::all_classes()))
                    .expect("cell prepares");
            let classes = campaign.run_range_classed(0, trials);
            assert_eq!(
                classes.total(),
                trials,
                "{name} x {}: buckets lost a trial",
                scheme.label()
            );
            assert_eq!(
                classes.aggregate().total(),
                trials,
                "{name} x {}: aggregate disagrees with the class split",
                scheme.label()
            );
            for (label, o) in classes.classes() {
                assert!(
                    o.total() > 0,
                    "{name} x {}: class {label} never drawn in {trials} trials",
                    scheme.label()
                );
            }
        }
    }
}

/// A mixed-class campaign interrupted twice resumes from its on-disk
/// checkpoint and finishes with *per-class* tallies identical to an
/// uninterrupted run — the checkpoint round-trips all thirty class-bucket
/// fields, not just the aggregate.
#[test]
fn mixed_campaign_kill_and_resume_is_byte_identical() {
    let _env = MixEnv::set("all");
    let w = by_name("kmeans").expect("workload");
    let trials = 24u64;
    let seed = 0xFA_0001u64;

    let reference = run_arch_campaign_checkpointed(
        &w,
        Scheme::SwapEcc,
        trials,
        seed,
        &CheckpointConfig {
            dir: None,
            ..CheckpointConfig::default()
        },
    )
    .expect("swap-ecc applies to kmeans");
    assert!(reference.finished);
    assert_eq!(reference.classes.total(), trials);
    assert!(
        reference.classes.control.total() > 0 && reference.classes.stuck_at.total() > 0,
        "the env mix must actually reach the driver: {:?}",
        reference.classes
    );

    let dir = scratch_dir("resume");
    let ck = |stop_after: Option<u64>| CheckpointConfig {
        dir: Some(dir.clone()),
        interval: 4,
        stop_after,
        ..CheckpointConfig::default()
    };
    let first = run_arch_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &ck(Some(9)))
        .expect("prepare");
    assert!(!first.finished, "stop_after must interrupt the run");
    assert_eq!(first.completed, 9);

    let second = run_arch_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &ck(Some(7)))
        .expect("prepare");
    assert!(!second.finished);
    assert_eq!(second.completed, 16, "second run resumes at trial 9");

    let last = run_arch_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &ck(None))
        .expect("prepare");
    assert!(last.finished);
    assert!(!last.stale_engine, "same mix must resume, not restart");
    assert_eq!(last.completed, trials);
    assert_eq!(
        last.classes, reference.classes,
        "resumed per-class tallies diverge from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint written under one fault mix must not be resumed by a
/// campaign running another: the trial→fault mapping differs, so splicing
/// tallies would mix incomparable draws. The driver rejects the file
/// (flagging `stale_engine`), restarts from trial 0, and the finished run
/// matches a checkpoint-free campaign under the new mix.
#[test]
fn changing_fault_mix_invalidates_checkpoint() {
    let _env = MixEnv::set("all");
    let w = by_name("matmul").expect("workload");
    let trials = 16u64;
    let seed = 0xFA_0002u64;
    let dir = scratch_dir("stale-mix");
    let ck = |stop_after: Option<u64>| CheckpointConfig {
        dir: Some(dir.clone()),
        interval: 2,
        stop_after,
        ..CheckpointConfig::default()
    };

    let partial = run_arch_campaign_checkpointed(&w, Scheme::SwDup, trials, seed, &ck(Some(6)))
        .expect("prepare");
    assert!(!partial.finished);
    drop(_env);

    let _env = MixEnv::set("transient");
    let resumed = run_arch_campaign_checkpointed(&w, Scheme::SwDup, trials, seed, &ck(None))
        .expect("prepare");
    assert!(
        resumed.stale_engine,
        "a mixed-class checkpoint must be rejected by a transient-only campaign"
    );
    assert!(resumed.finished);
    assert_eq!(resumed.completed, trials);
    assert_eq!(resumed.classes.control.total(), 0);
    assert_eq!(resumed.classes.stuck_at.total(), 0);

    let reference = run_arch_campaign_checkpointed(
        &w,
        Scheme::SwDup,
        trials,
        seed,
        &CheckpointConfig {
            dir: None,
            ..CheckpointConfig::default()
        },
    )
    .expect("prepare");
    assert_eq!(
        resumed.classes, reference.classes,
        "the restarted campaign must match a checkpoint-free transient run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stuck-at corruption is idempotent: applying the operator twice is
    /// the same as applying it once, for every (bit, polarity) and any
    /// value. The executor relies on this to re-assert a permanent defect
    /// on every eligible access without tracking prior deliveries.
    #[test]
    fn stuck_at_apply_is_idempotent(
        value in any::<u64>(),
        bit in 0u32..32,
        lane in 0u32..32,
        polarity in any::<bool>(),
        period in 0u32..64,
    ) {
        let f = FaultSpec::try_stuck_at(0, lane, bit, polarity, 7, period, FaultTarget::Original)
            .expect("in-range spec");
        let once32 = f.apply32(value as u32);
        prop_assert_eq!(f.apply32(once32), once32);
        let once64 = f.apply64(value);
        prop_assert_eq!(f.apply64(once64), once64);
        // The asserted bit really is stuck, regardless of the input.
        prop_assert_eq!(once32 >> bit & 1, u32::from(polarity));
    }

    /// Every trial of a campaign lands in exactly one class bucket, for
    /// arbitrary mix weights: the class split always sums to the trial
    /// count, the aggregate always equals the split, and classes with zero
    /// weight never receive a trial.
    #[test]
    fn class_buckets_partition_the_trials(
        t in 0u32..3,
        c in 0u32..3,
        s in 0u32..3,
        seed in 0u64..1_000,
        start in 0u64..32,
    ) {
        prop_assume!(t + c + s > 0);
        let mix = FaultMix { transient: t, control: c, stuck_at: s };
        let w = by_name("matmul").expect("workload");
        let campaign = ArchCampaign::prepare_with(&w, Scheme::SwapEcc, seed, mixed(mix))
            .expect("cell prepares");
        let trials = 10u64;
        let classes = campaign.run_range_classed(start, start + trials);
        prop_assert_eq!(classes.total(), trials);
        prop_assert_eq!(classes.aggregate().total(), trials);
        for ((_, o), weight) in classes.classes().iter().zip([t, c, s]) {
            if weight == 0 {
                prop_assert_eq!(o.total(), 0, "zero-weight class drew a trial");
            }
        }
        // A pure-transient mix is the legacy campaign, outcome for outcome.
        if c == 0 && s == 0 {
            prop_assert_eq!(classes.aggregate(), campaign.run_range(start, start + trials));
        }
    }
}
