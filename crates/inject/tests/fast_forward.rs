//! Fast-forward engine validation: the snapshot-resuming trial path must be
//! outcome-identical to the from-scratch reference executor, and campaign
//! checkpoints written before the engine existed must be rejected loudly
//! (restart from trial 0 + anomaly record), never silently resumed.

use std::path::PathBuf;

use proptest::prelude::*;
use swapcodes_core::{PredictorSet, Scheme};
use swapcodes_inject::{
    run_arch_campaign_checkpointed, ArchCampaign, CheckpointConfig, TrialOutcome,
};
use swapcodes_workloads::by_name;

/// The (workload, scheme) cells the differential property samples from —
/// every scheme family, including the unprotected baseline (whose SDC-heavy
/// outcome mix stresses the golden-output comparison rather than detection).
fn cells() -> Vec<(&'static str, Scheme)> {
    vec![
        ("matmul", Scheme::Baseline),
        ("matmul", Scheme::SwapEcc),
        ("matmul", Scheme::SwDup),
        ("kmeans", Scheme::SwapEcc),
        ("kmeans", Scheme::SwDup),
        ("kmeans", Scheme::SwapPredict(PredictorSet::MAD)),
        ("hspot", Scheme::SwapEcc),
        ("pathf", Scheme::SwapPredict(PredictorSet::FP_MAD)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random cells, seeds, salts and trial windows, the fast-forward
    /// path and the from-scratch reference path classify every trial
    /// identically.
    #[test]
    fn fast_forward_matches_reference(
        cell in 0usize..8,
        seed in 0u64..1_000_000,
        salt in 0u32..4,
        start in 0u64..48,
    ) {
        let (name, scheme) = cells()[cell];
        let w = by_name(name).expect("workload");
        let campaign = ArchCampaign::prepare(&w, scheme, seed).expect("applies");
        for trial in start..start + 6 {
            let fast = campaign.run_trial_salted(trial, salt);
            let reference = campaign.run_trial_reference_salted(trial, salt);
            prop_assert_eq!(
                fast,
                reference,
                "trial {} (seed {:#x}, salt {}) diverged on {}/{}",
                trial,
                seed,
                salt,
                name,
                scheme.label()
            );
        }
    }
}

/// A dense window of trials on the two bench cells, checked one-for-one
/// against the reference executor (the bench's 1,000-trial differential
/// gate in `perf_baseline` extends this to full campaign scale).
#[test]
fn dense_trial_window_matches_reference() {
    for (name, scheme) in [("matmul", Scheme::SwapEcc), ("kmeans", Scheme::SwDup)] {
        let w = by_name(name).expect("workload");
        let campaign = ArchCampaign::prepare(&w, scheme, 0xD1FF).expect("applies");
        for trial in 0..100 {
            assert_eq!(
                campaign.run_trial_salted(trial, 0),
                campaign.run_trial_reference_salted(trial, 0),
                "trial {trial} diverged on {name}/{}",
                scheme.label()
            );
        }
    }
}

/// The engine actually fast-forwards: across a batch of trials, most resume
/// from a non-zero epoch, the total executed instruction count is well below
/// replaying the golden prefix every time, and early exits only ever
/// classify Masked.
#[test]
fn telemetry_shows_resume_and_early_exit() {
    let w = by_name("matmul").expect("workload");
    let campaign = ArchCampaign::prepare(&w, Scheme::SwapEcc, 7).expect("applies");
    assert!(
        campaign.snapshot_count() >= 2,
        "ladder must hold more than the initial epoch"
    );
    let trials = 64u64;
    let mut resumed_nonzero = 0u64;
    let mut executed_total = 0u64;
    for trial in 0..trials {
        let (outcome, telem) = campaign.run_trial_telemetry_salted(trial, 0);
        if telem.early_exit {
            assert_eq!(
                outcome,
                TrialOutcome::Masked,
                "early exit may only classify Masked"
            );
        }
        if telem.resumed_from > 0 {
            resumed_nonzero += 1;
        }
        executed_total += telem.executed;
    }
    assert!(
        resumed_nonzero * 2 > trials,
        "most trials should resume past epoch 0 ({resumed_nonzero}/{trials})"
    );
    assert!(
        executed_total < trials * campaign.golden_dynamic(),
        "fast path must execute fewer instructions than from-scratch replay"
    );
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swapcodes-ff-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kill-and-resume across an engine change: a checkpoint written by the
/// pre-fast-forward harness (no `engine` tag) matches the campaign identity
/// but must NOT be resumed — the run restarts from trial 0, flags
/// `stale_engine`, records an anomaly, and still converges to the
/// uninterrupted tallies.
#[test]
fn stale_engine_checkpoint_restarts_from_zero() {
    let w = by_name("kmeans").expect("workload");
    let trials = 12u64;
    let seed = 0xFA57_0001u64;
    let dir = scratch_dir("stale");
    let ck = |stop_after: Option<u64>| CheckpointConfig {
        dir: Some(dir.clone()),
        interval: 2,
        stop_after,
        ..CheckpointConfig::default()
    };

    let reference = run_arch_campaign_checkpointed(
        &w,
        Scheme::SwapEcc,
        trials,
        seed,
        &CheckpointConfig {
            dir: None,
            ..CheckpointConfig::default()
        },
    )
    .expect("prepare");

    // Leave a half-finished, correctly tagged checkpoint behind...
    let first = run_arch_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &ck(Some(5)))
        .expect("prepare");
    assert!(!first.finished);
    assert!(!first.stale_engine);
    assert_eq!(first.completed, 5);

    // ...then rewrite it as a pre-fast-forward checkpoint by stripping the
    // engine tag, exactly what a file from an older build looks like.
    let ckpt = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.to_string_lossy().ends_with(".ckpt.json"))
        .expect("checkpoint file");
    let tagged = std::fs::read_to_string(&ckpt).expect("read checkpoint");
    assert!(
        tagged.contains("\"engine\":\"ff2p\""),
        "checkpoint carries the default engine tag (tier 2, peepholed)"
    );
    std::fs::write(&ckpt, tagged.replace("\"engine\":\"ff2p\",", "")).expect("rewrite");

    // The resume must refuse the stale file and start over from trial 0.
    let second = run_arch_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &ck(Some(3)))
        .expect("prepare");
    assert!(second.stale_engine, "stale engine must be flagged");
    assert_eq!(
        second.completed, 3,
        "run must restart from trial 0, not resume at 5"
    );
    let anomalies =
        std::fs::read_to_string(dir.join("anomalies.jsonl")).expect("anomaly log exists");
    assert!(
        anomalies.contains("incompatible"),
        "rejection must be recorded: {anomalies}"
    );

    // The restarted run re-tags its checkpoints, so finishing out resumes
    // normally and lands on the uninterrupted tallies.
    let last = run_arch_campaign_checkpointed(&w, Scheme::SwapEcc, trials, seed, &ck(None))
        .expect("prepare");
    assert!(last.finished);
    assert!(!last.stale_engine);
    assert_eq!(last.completed, trials);
    assert_eq!(last.outcomes, reference.outcomes);

    let _ = std::fs::remove_dir_all(&dir);
}
