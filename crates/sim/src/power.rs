//! Activity-based GPU power and energy estimation (Fig. 14's methodology
//! substitute: the paper samples board power with `nvprof`; here energy is
//! accumulated per dynamic instruction class over the timing result).

use serde::{Deserialize, Serialize};
use swapcodes_isa::{FuncUnit, Kernel, Op};

use crate::exec::WarpTrace;
use crate::timing::KernelTiming;

/// Per-warp-instruction dynamic energy, in picojoules, plus static power.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerModel {
    /// Integer/move/control instruction energy (pJ per warp instruction).
    pub int_pj: f64,
    /// FP32 instruction energy.
    pub f32_pj: f64,
    /// FP64 instruction energy.
    pub f64_pj: f64,
    /// SFU instruction energy.
    pub sfu_pj: f64,
    /// Per-memory-instruction energy.
    pub mem_pj: f64,
    /// Per-128B-transaction DRAM energy.
    pub txn_pj: f64,
    /// Static + uncore power per SM, in watts.
    pub static_w: f64,
    /// SM clock in GHz (converts cycles to seconds).
    pub clock_ghz: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            int_pj: 18.0,
            f32_pj: 26.0,
            f64_pj: 85.0,
            sfu_pj: 45.0,
            mem_pj: 35.0,
            txn_pj: 160.0,
            static_w: 1.9,
            clock_ghz: 1.3,
        }
    }
}

/// Estimated power/energy for one kernel execution.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Average SM power in watts during the kernel.
    pub power_w: f64,
    /// Total energy in microjoules for the simulated wave.
    pub energy_uj: f64,
}

impl PowerEstimate {
    /// Power relative to a baseline estimate.
    #[must_use]
    pub fn power_rel(&self, base: &PowerEstimate) -> f64 {
        self.power_w / base.power_w
    }

    /// Energy relative to a baseline estimate.
    #[must_use]
    pub fn energy_rel(&self, base: &PowerEstimate) -> f64 {
        self.energy_uj / base.energy_uj
    }
}

/// Estimate power and energy from a wave's traces and its timing.
#[must_use]
pub fn estimate(
    model: &PowerModel,
    kernel: &Kernel,
    traces: &[WarpTrace],
    timing: &KernelTiming,
) -> PowerEstimate {
    let mut dynamic_pj = 0.0f64;
    for t in traces {
        for e in &t.entries {
            let op = &kernel.instrs()[e.kidx as usize].op;
            dynamic_pj += match op.func_unit() {
                FuncUnit::Int | FuncUnit::Mov | FuncUnit::Ctrl => model.int_pj,
                FuncUnit::F32 => model.f32_pj,
                FuncUnit::F64 => model.f64_pj,
                FuncUnit::Sfu => model.sfu_pj,
                FuncUnit::Mem => model.mem_pj + f64::from(e.txns) * model.txn_pj,
            };
            // Shared-memory traffic is cheaper than DRAM: discount.
            if let Op::Ld {
                space: swapcodes_isa::MemSpace::Shared,
                ..
            }
            | Op::St {
                space: swapcodes_isa::MemSpace::Shared,
                ..
            } = op
            {
                dynamic_pj -= f64::from(e.txns) * model.txn_pj * 0.85;
            }
        }
    }
    let seconds = timing.wave_cycles.max(1) as f64 / (model.clock_ghz * 1e9);
    let dynamic_w = dynamic_pj * 1e-12 / seconds;
    let power_w = dynamic_w + model.static_w;
    PowerEstimate {
        power_w,
        energy_uj: power_w * seconds * 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecConfig, Executor, Launch};
    use crate::memory::GlobalMemory;
    use crate::timing::{simulate_kernel, TimingConfig};
    use swapcodes_isa::{KernelBuilder, Reg, Src};

    #[test]
    fn busier_kernels_use_more_energy() {
        let mut small = KernelBuilder::new("small");
        for i in 0..8 {
            small.push(Op::FAdd {
                d: Reg(i),
                a: Reg(i),
                b: Src::Imm(0x3F80_0000),
            });
        }
        small.push(Op::Exit);
        let small = small.finish();
        let mut big = KernelBuilder::new("big");
        for rep in 0..10 {
            for i in 0..8 {
                let _ = rep;
                big.push(Op::FAdd {
                    d: Reg(i),
                    a: Reg(i),
                    b: Src::Imm(0x3F80_0000),
                });
            }
        }
        big.push(Op::Exit);
        let big = big.finish();

        let model = PowerModel::default();
        let cfg = TimingConfig::default();
        let launch = Launch::grid(4, 128);

        let run = |k: &Kernel| {
            let mut mem = GlobalMemory::new(64);
            let timing = simulate_kernel(k, launch, &mut mem, &cfg).expect("timing");
            let exec = Executor {
                config: ExecConfig {
                    collect_trace: true,
                    cta_limit: Some(timing.occupancy.ctas.min(launch.ctas)),
                    ..ExecConfig::default()
                },
            };
            let mut mem2 = GlobalMemory::new(64);
            let out = exec.run(k, launch, &mut mem2).expect("clean run");
            estimate(&model, k, &out.traces, &timing)
        };
        let e_small = run(&small);
        let e_big = run(&big);
        assert!(e_big.energy_uj > e_small.energy_uj);
        assert!(e_small.power_w > 0.0);
    }
}
