//! Tier-2 execution: closure-compiled threaded code over the predecoded
//! micro-op table.
//!
//! The tier-1 fast-forward interpreter ([`crate::snapshot`]) already avoids
//! re-matching the `Op` enum per step by lowering the kernel once into the
//! flat [`PredecodedKernel`] table, but every dynamic instruction still
//! funnels through a central `match mop.uop` dispatch. Tier 2 compiles that
//! table one step further, into a *threaded-code buffer*: one boxed closure
//! per static micro-op, with the guard shape, operand sources and write mode
//! captured in the closure at compile time. The scheduler indexes the buffer
//! by PC and calls the closure directly — dispatch is an indirect call on a
//! per-PC function pointer instead of a jump table inside a shared
//! interpreter loop, and adjacent micro-ops can be *fused* into
//! superinstruction closures that issue two architectural instructions per
//! dispatch.
//!
//! # Fusion rules and their soundness
//!
//! All fused closures guard on `w.frags.len() == 1` at run time and fall
//! back to single-step execution otherwise: with a single fragment, the
//! min-PC scheduler provably re-picks the same fragment after each issued
//! instruction, so executing several in the same dispatch preserves the
//! exact tier-1 issue order (and therefore the dynamic-instruction and
//! eligible-op counter sequences that fault targeting keys on). Because a
//! closure is emitted for *every* PC regardless of fusion, a branch into
//! the middle of a fused region simply lands on that suffix's own closure —
//! fusion never needs branch-target analysis.
//!
//! * **Superblock** — a maximal run of *straight-line* micro-ops (anything
//!   but a branch, exit, trap or barrier), walked in one dispatch up to the
//!   warp's remaining quantum budget. The scheduler round trip, indirect
//!   call, fragment pick and strike-window test are paid once per walk
//!   instead of once per instruction. Within a superblock:
//!   * an **ECC-shadow pair** — an original (identical micro-op,
//!     [`WriteMode::Full`], destinations disjoint from sources) directly
//!     followed by its SwapCodes check-bit shadow ([`WriteMode::EccOnly`],
//!     same guard) — executes the original and *skips the shadow's
//!     recomputation entirely*, keeping only its issue accounting and
//!     eligible-counter bump. After the original's full write the shadow
//!     would recompute the same result from unchanged sources and re-encode
//!     the same check bits over the same stored data — a state no-op. If
//!     any of the shadow's operand reads would have raised a DUE, the
//!     original's identical reads already did and the walk stopped first;
//!     the decoder arming flag is a performance hint with no architectural
//!     effect on consistent codewords (see `snapshot::state_matches`).
//!   * every other element (loads, stores, atomics, compares, shuffles,
//!     compute ops) executes in full — guard evaluation, execution, DUE
//!     promotion and halt checks per element, so mid-walk detections,
//!     memory faults and predicate writes behave exactly as in tier 1.
//!
//!   The walk is entered only after proving, once, that nothing inside it
//!   can observe the difference from per-instruction stepping: the trial's
//!   single fault strike must not land in the walked window of either
//!   per-side eligible counter (otherwise the walk degrades to exact
//!   per-element stepping for one element and re-tests), and the walk must
//!   not cross the fuel limit or the dynamic-instruction cap (both of which
//!   halt runs mid-stream in tier 1). Eligible counters are bulk-advanced
//!   at the end of the walk — nothing inside a walk reads them, and the
//!   scheduler hooks that do only run between rounds.
//! * **SetP + guarded branch** — an unguarded, unskipped predicate compare
//!   immediately followed by a branch guarded on the predicate bit it just
//!   wrote (neither fault-eligible). Both halves execute in full through the
//!   shared interpreter core; the fusion saves one scheduler round trip and
//!   evaluates the branch guard from the freshly written predicates. This is
//!   the protection passes' check-and-trap idiom, the hottest two-op
//!   sequence software duplication adds.
//!
//! A fused dispatch never issues more instructions than the warp's
//! remaining 64-instruction quantum budget, so warp interleaving — and with
//! it the global counter sequences that fault targeting and detection
//! timestamps observe — is byte-identical across tiers. The campaign
//! engine runs tier 2 and tier 1 over identical snapshot ladders and the
//! differential suites assert byte-identical outcome tallies.
//!
//! Tier-2 runs additionally execute with the register file's *deferred
//! check-bit encoding* enabled (see [`crate::regfile::WarpRegFile`]): full
//! writes store only the data segment, and the clean-state codeword
//! invariant is restored bit-identically at every observation point. The
//! engine enables the mode in [`crate::snapshot`] when a compiled kernel
//! is present; the closures here need no awareness of it.

use core::fmt;

use crate::fault::FaultTarget;
use crate::predecode::{Guard, MicroOp, PSrc, PredecodedKernel, UOp, WriteMode};
use crate::snapshot::{
    account_issue, eval_guard, exec_uop, merge_frags, pick_fragment, promote_due, step_with,
    target_and_bump, FastCtx, FastWarp,
};

/// Which execution engine the fast-forward campaign engine interprets the
/// predecoded kernel with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecTier {
    /// The predecoded interpreter: a central match over the micro-op table.
    /// The differential reference for tier 2.
    #[default]
    Tier1,
    /// Closure-compiled threaded code with superinstruction fusion.
    Tier2,
}

impl ExecTier {
    /// Parse a tier name as accepted by `SWAPCODES_EXEC_TIER`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the accepted values when `s`
    /// names no tier.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "1" | "tier1" | "interp" | "interpreter" => Ok(Self::Tier1),
            "2" | "tier2" | "compiled" | "threaded" => Ok(Self::Tier2),
            other => Err(format!(
                "unknown execution tier {other:?} (expected \"tier1\" or \"tier2\")"
            )),
        }
    }

    /// Canonical lowercase name (`"tier1"` / `"tier2"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Tier1 => "tier1",
            Self::Tier2 => "tier2",
        }
    }
}

impl fmt::Display for ExecTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One threaded-code dispatch closure: executes the micro-op(s) at its PC
/// against the shared campaign state, never issuing more architectural
/// instructions than the warp's remaining quantum `budget`, and returns how
/// many it issued (1, 2 for a fused pair, or up to `budget` for a fused
/// chain).
type Thunk = Box<dyn Fn(&mut FastCtx<'_>, &mut FastWarp, usize, i32) -> i32 + Send + Sync>;

/// A kernel compiled to threaded code: one dispatch closure per static
/// micro-op, plus fusion statistics.
pub struct CompiledKernel {
    thunks: Vec<Thunk>,
    fused_pairs: usize,
}

impl fmt::Debug for CompiledKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledKernel")
            .field("len", &self.thunks.len())
            .field("fused_pairs", &self.fused_pairs)
            .finish_non_exhaustive()
    }
}

impl CompiledKernel {
    /// Compile every micro-op of `pk` into its dispatch closure, fusing
    /// straight-line runs into superblocks. Every PC gets the maximal
    /// superblock *starting there* (suffixes overlap), so a branch into the
    /// middle of one block lands on another block's own closure.
    #[must_use]
    pub fn compile(pk: &PredecodedKernel) -> Self {
        let n = pk.len();
        let mut thunks: Vec<Thunk> = Vec::with_capacity(n);
        let mut fused_pairs = 0;
        for pc in 0..n {
            let mop0 = *pk.op_ref(pc);
            // Gather the superblock starting at this PC: ECC pairs (shadow
            // skipped) and fully-executed singles, ending at control flow.
            let mut elems: Vec<BlockElem> = Vec::new();
            let mut q = pc;
            while q < n {
                let m = *pk.op_ref(q);
                if !blockable(&m.uop) {
                    break;
                }
                if q + 1 < n {
                    let s = *pk.op_ref(q + 1);
                    if is_ecc_pair(&m, &s) {
                        elems.push(BlockElem::Pair(EccPair {
                            orig: m,
                            shadow_eligible: s.eligible,
                        }));
                        q += 2;
                        continue;
                    }
                }
                elems.push(BlockElem::Single(m));
                q += 1;
            }
            let has_pair = elems.iter().any(|e| matches!(e, BlockElem::Pair(_)));
            let thunk = if has_pair || elems.len() >= 2 {
                fused_pairs += 1;
                superblock(elems)
            } else if pc + 1 < n && is_setp_bra(&mop0, pk.op_ref(pc + 1)) {
                fused_pairs += 1;
                fused_setp_bra(mop0, *pk.op_ref(pc + 1))
            } else {
                generic(mop0)
            };
            thunks.push(thunk);
        }
        Self {
            thunks,
            fused_pairs,
        }
    }

    /// Number of PCs whose closure is a fused superinstruction.
    #[must_use]
    pub fn fused_pairs(&self) -> usize {
        self.fused_pairs
    }

    /// Number of compiled closures (= static micro-ops).
    #[must_use]
    pub fn len(&self) -> usize {
        self.thunks.len()
    }

    /// Whether the kernel compiled to no closures.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.thunks.is_empty()
    }

    /// Dispatch one closure for warp `w`: pick the min-PC fragment, retire
    /// it if it ran past the end, otherwise call the closure at its PC with
    /// the warp's remaining quantum budget. Returns the number of
    /// architectural instructions issued (never more than `budget`).
    pub(crate) fn step(&self, ctx: &mut FastCtx<'_>, w: &mut FastWarp, budget: i32) -> i32 {
        let fi = pick_fragment(w);
        let pc = w.frags[fi].pc;
        if let Some(thunk) = self.thunks.get(pc) {
            thunk(ctx, w, fi, budget)
        } else {
            w.frags.remove(fi);
            1
        }
    }
}

/// The unfused closure: full shared-core semantics for one micro-op.
fn generic(mop: MicroOp) -> Thunk {
    Box::new(move |ctx, w, fi, _budget| {
        step_with(ctx, w, &mop, fi);
        1
    })
}

/// A fused ECC pair inside a superblock: the original micro-op plus the
/// shadow's fault-eligibility side (the shadow's recomputation is never
/// executed).
struct EccPair {
    orig: MicroOp,
    shadow_eligible: Option<FaultTarget>,
}

/// One element of a superblock.
enum BlockElem {
    /// Original + skipped check-bit shadow: issues two instructions.
    Pair(EccPair),
    /// Any other straight-line micro-op, executed in full: issues one.
    Single(MicroOp),
}

impl BlockElem {
    fn cost(&self) -> i32 {
        match self {
            BlockElem::Pair(_) => 2,
            BlockElem::Single(_) => 1,
        }
    }

    fn first_op(&self) -> &MicroOp {
        match self {
            BlockElem::Pair(p) => &p.orig,
            BlockElem::Single(m) => m,
        }
    }
}

/// Micro-ops a superblock may contain: everything except control flow and
/// barriers, which can change the fragment set, the active mask or the
/// warp's scheduling state mid-walk.
fn blockable(u: &UOp) -> bool {
    !matches!(u, UOp::Bra { .. } | UOp::Exit | UOp::Trap | UOp::Bar)
}

/// Would the trial's datapath fault fire while the matching per-side
/// eligible counter advances by `orig_bumps` / `shadow_bumps` from its
/// current value? (Counters are per-side and advance by exactly one per
/// eligible instruction, so ordering within the span is irrelevant.) The
/// per-class activation windows come from [`FaultSpec::fires_at`]: a
/// transient fires at exactly one counter value, a stuck-at defect on every
/// in-duty value past activation — which also disables the ECC-shadow skip
/// (its state-no-op proof fails when the shadow's recomputation would be
/// corrupted too). Control strikes are keyed on the dynamic-instruction
/// counter instead and are handled by [`FastCtx::control_pending_within`].
fn strike_in_span(ctx: &FastCtx<'_>, orig_bumps: u64, shadow_bumps: u64) -> bool {
    let Some(f) = ctx.fault else {
        return false;
    };
    if f.is_control() {
        return false;
    }
    let (cur, n) = match f.target {
        FaultTarget::Original => (ctx.eligible_orig, orig_bumps),
        FaultTarget::Shadow => (ctx.eligible_shadow, shadow_bumps),
    };
    (cur..cur + n).any(|seen| f.fires_at(seen))
}

/// One ECC pair under full per-pair semantics: bail to the generic
/// single-step path when the strike lands inside this pair's eligible
/// window, otherwise execute the original and account the skipped shadow.
fn ecc_pair_step(
    ctx: &mut FastCtx<'_>,
    w: &mut FastWarp,
    fi: usize,
    pair: &EccPair,
    pair_window: (u64, u64),
) -> i32 {
    if strike_in_span(ctx, pair_window.0, pair_window.1) || ctx.control_pending_within(2) {
        step_with(ctx, w, &pair.orig, fi);
        return 1;
    }
    let exec_mask = eval_guard(pair.orig.guard, w.frags[fi].mask, &w.preds);
    if !account_issue(ctx) {
        return 1;
    }
    let _ = target_and_bump(ctx, pair.orig.eligible);
    exec_uop(ctx, w, &pair.orig, fi, exec_mask, None);
    promote_due(ctx);
    if ctx.halted() {
        return 1;
    }
    // Shadow half: bookkeeping only; the write itself is a state no-op.
    if !account_issue(ctx) {
        return 2;
    }
    let _ = target_and_bump(ctx, pair.shadow_eligible);
    w.frags[fi].pc += 1;
    2
}

/// Credit the eligible counters for a partially-completed walk: everything
/// before element `i` (`walked`, from the prefix sums) plus the halting
/// element's own already-issued side.
fn settle_counters(ctx: &mut FastCtx<'_>, walked: (u64, u64), extra: Option<FaultTarget>) {
    let (mut o, mut s) = walked;
    match extra {
        Some(FaultTarget::Original) => o += 1,
        Some(FaultTarget::Shadow) => s += 1,
        None => {}
    }
    ctx.eligible_orig += o;
    ctx.eligible_shadow += s;
}

/// A straight-line superblock compiled into one superinstruction: walk as
/// many elements as the quantum budget allows per dispatch, with the strike
/// window, fuel limit, dynamic-instruction cap and fragment shape
/// prechecked once for the whole walk so the per-element body is just guard
/// evaluation, execution and halt checks.
fn superblock(elems: Vec<BlockElem>) -> Thunk {
    // Prefix sums of per-side eligible-counter bumps over the elements.
    let mut prefix = Vec::with_capacity(elems.len() + 1);
    let (mut o, mut s) = (0u64, 0u64);
    prefix.push((o, s));
    for e in &elems {
        let sides = match e {
            BlockElem::Pair(p) => [p.orig.eligible, p.shadow_eligible],
            BlockElem::Single(m) => [m.eligible, None],
        };
        for side in sides.into_iter().flatten() {
            match side {
                FaultTarget::Original => o += 1,
                FaultTarget::Shadow => s += 1,
            }
        }
        prefix.push((o, s));
    }
    let first = *elems[0].first_op();
    Box::new(move |ctx, w, fi, budget| {
        if w.frags.len() != 1 {
            step_with(ctx, w, &first, fi);
            return 1;
        }
        // Walk as many elements as the quantum budget allows.
        let mut k = 0usize;
        let mut cost = 0i32;
        while k < elems.len() {
            let c = elems[k].cost();
            if cost + c > budget {
                break;
            }
            cost += c;
            k += 1;
        }
        let (orig_bumps, shadow_bumps) = prefix[k];
        let walk_len = cost.unsigned_abs() as u64;
        let bulk_ok = k > 0
            && !strike_in_span(ctx, orig_bumps, shadow_bumps)
            && !ctx.control_pending_within(walk_len)
            && ctx.dyn_count + walk_len < ctx.max_dynamic
            && ctx.fuel.is_none_or(|f| ctx.dyn_count + walk_len <= f);
        if !bulk_ok {
            // The strike, the fuel limit or the dynamic cap lands somewhere
            // in the walk: advance one element under exact per-instruction
            // semantics and let the next dispatch re-test what remains.
            return match &elems[0] {
                BlockElem::Pair(p) => ecc_pair_step(ctx, w, fi, p, prefix[1]),
                BlockElem::Single(m) => {
                    step_with(ctx, w, m, fi);
                    1
                }
            };
        }
        let mut issued = 0i32;
        for (i, e) in elems[..k].iter().enumerate() {
            match e {
                BlockElem::Pair(p) => {
                    let exec_mask = eval_guard(p.orig.guard, w.frags[fi].mask, &w.preds);
                    ctx.dyn_count += 1;
                    exec_uop(ctx, w, &p.orig, fi, exec_mask, None);
                    promote_due(ctx);
                    issued += 1;
                    if ctx.halted() {
                        settle_counters(ctx, prefix[i], p.orig.eligible);
                        return issued;
                    }
                    // Shadow half: bookkeeping only (state no-op).
                    ctx.dyn_count += 1;
                    w.frags[fi].pc += 1;
                    issued += 1;
                }
                BlockElem::Single(m) => {
                    let exec_mask = eval_guard(m.guard, w.frags[fi].mask, &w.preds);
                    ctx.dyn_count += 1;
                    exec_uop(ctx, w, m, fi, exec_mask, None);
                    promote_due(ctx);
                    issued += 1;
                    if ctx.halted() {
                        settle_counters(ctx, prefix[i], m.eligible);
                        return issued;
                    }
                }
            }
        }
        ctx.eligible_orig += orig_bumps;
        ctx.eligible_shadow += shadow_bumps;
        issued
    })
}

/// SetP + dependent guarded branch superinstruction: both halves execute in
/// full; the branch guard is evaluated from the just-written predicates.
fn fused_setp_bra(mop0: MicroOp, mop1: MicroOp) -> Thunk {
    Box::new(move |ctx, w, fi, _budget| {
        if w.frags.len() != 1 || ctx.control_pending_within(2) {
            step_with(ctx, w, &mop0, fi);
            return 1;
        }
        // SetP half (guard Always, never fault-eligible by the fusion rule).
        let mask0 = w.frags[fi].mask;
        if !account_issue(ctx) {
            return 1;
        }
        exec_uop(ctx, w, &mop0, fi, mask0, None);
        promote_due(ctx);
        if ctx.halted() {
            return 1;
        }
        // Branch half: guard reads the predicate bit the SetP just wrote.
        let exec_mask = eval_guard(mop1.guard, w.frags[fi].mask, &w.preds);
        if !account_issue(ctx) {
            return 2;
        }
        exec_uop(ctx, w, &mop1, fi, exec_mask, None);
        promote_due(ctx);
        merge_frags(w);
        2
    })
}

/// Micro-ops that touch only the register file (and, for `Sel`, read
/// predicates): no memory, no barriers, no control flow, no predicate
/// writes. These cannot change fragment structure or guard outcomes.
fn register_only(u: &UOp) -> bool {
    matches!(
        u,
        UOp::S2R { .. }
            | UOp::Mov { .. }
            | UOp::Alu2 { .. }
            | UOp::Alu1 { .. }
            | UOp::IMad { .. }
            | UOp::IMadWide { .. }
            | UOp::FFma { .. }
            | UOp::DAdd { .. }
            | UOp::DMul { .. }
            | UOp::DFma { .. }
            | UOp::Sel { .. }
    )
}

const RZ8: u8 = 255;

fn push_reg(out: &mut Vec<u8>, r: u8) {
    if r != RZ8 {
        out.push(r);
    }
}

fn push_reg64(out: &mut Vec<u8>, r: u8) {
    if r != RZ8 {
        out.push(r);
        out.push(r + 1);
    }
}

fn push_src(out: &mut Vec<u8>, s: PSrc) {
    if let PSrc::Reg(r) = s {
        push_reg(out, r);
    }
}

/// Architectural registers a micro-op writes (pair-high halves included).
fn defs(u: &UOp) -> Vec<u8> {
    let mut out = Vec::new();
    match *u {
        UOp::S2R { d, .. }
        | UOp::Mov { d, .. }
        | UOp::Alu2 { d, .. }
        | UOp::Alu1 { d, .. }
        | UOp::IMad { d, .. }
        | UOp::FFma { d, .. }
        | UOp::Sel { d, .. } => push_reg(&mut out, d),
        UOp::IMadWide { d, .. }
        | UOp::DAdd { d, .. }
        | UOp::DMul { d, .. }
        | UOp::DFma { d, .. } => {
            push_reg64(&mut out, d);
        }
        _ => {}
    }
    out
}

/// Architectural registers a micro-op reads (pair-high halves included).
fn uses(u: &UOp) -> Vec<u8> {
    let mut out = Vec::new();
    match *u {
        UOp::Mov { a, .. } => push_src(&mut out, a),
        UOp::Alu2 { a, b, .. } => {
            push_reg(&mut out, a);
            push_src(&mut out, b);
        }
        UOp::Alu1 { a, .. } => push_reg(&mut out, a),
        UOp::IMad { a, b, c, .. } | UOp::FFma { a, b, c, .. } => {
            push_reg(&mut out, a);
            push_reg(&mut out, b);
            push_reg(&mut out, c);
        }
        UOp::IMadWide { a, b, c, .. } => {
            push_reg(&mut out, a);
            push_reg(&mut out, b);
            push_reg64(&mut out, c);
        }
        UOp::DAdd { a, b, .. } | UOp::DMul { a, b, .. } => {
            push_reg64(&mut out, a);
            push_reg64(&mut out, b);
        }
        UOp::DFma { a, b, c, .. } => {
            push_reg64(&mut out, a);
            push_reg64(&mut out, b);
            push_reg64(&mut out, c);
        }
        UOp::Sel { a, b, .. } => {
            push_reg(&mut out, a);
            push_src(&mut out, b);
        }
        _ => {}
    }
    out
}

/// SwapCodes original + check-bit shadow: identical register-only micro-op
/// under the same guard, full write followed by ECC-only write, with
/// destinations disjoint from sources (so the shadow's recomputation reads
/// unchanged registers).
fn is_ecc_pair(mop0: &MicroOp, mop1: &MicroOp) -> bool {
    mop0.uop == mop1.uop
        && mop0.guard == mop1.guard
        && mop0.write == WriteMode::Full
        && mop1.write == WriteMode::EccOnly
        && register_only(&mop0.uop)
        && {
            let ds = defs(&mop0.uop);
            !ds.is_empty() && uses(&mop0.uop).iter().all(|u| !ds.contains(u))
        }
}

/// Unguarded effectful SetP directly feeding the guard of the next branch,
/// neither op fault-eligible.
fn is_setp_bra(mop0: &MicroOp, mop1: &MicroOp) -> bool {
    let UOp::SetP { p, skip, .. } = mop0.uop else {
        return false;
    };
    if skip || mop0.guard != Guard::Always || mop0.eligible.is_some() {
        return false;
    }
    matches!(mop1.uop, UOp::Bra { .. })
        && mop1.eligible.is_none()
        && matches!(mop1.guard, Guard::If(b) | Guard::IfNot(b) if b == p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(uop: UOp, write: WriteMode) -> MicroOp {
        MicroOp {
            uop,
            guard: Guard::Always,
            write,
            eligible: None,
        }
    }

    #[test]
    fn tier_parses_and_displays() {
        assert_eq!(ExecTier::parse("tier1").unwrap(), ExecTier::Tier1);
        assert_eq!(ExecTier::parse(" TIER2 ").unwrap(), ExecTier::Tier2);
        assert_eq!(ExecTier::parse("2").unwrap(), ExecTier::Tier2);
        assert_eq!(ExecTier::parse("interpreter").unwrap(), ExecTier::Tier1);
        assert!(ExecTier::parse("tier3").is_err());
        assert_eq!(ExecTier::Tier2.to_string(), "tier2");
        assert_eq!(ExecTier::default(), ExecTier::Tier1);
    }

    #[test]
    fn ecc_pair_requires_disjoint_defs_and_uses() {
        let orig = plain(
            UOp::Alu2 {
                kind: crate::predecode::Alu2Kind::IAdd,
                d: 2,
                a: 0,
                b: PSrc::Reg(1),
            },
            WriteMode::Full,
        );
        let mut shadow = orig;
        shadow.write = WriteMode::EccOnly;
        assert!(is_ecc_pair(&orig, &shadow));

        // d aliases a source: the shadow's recomputation would read the
        // freshly written register, so the pair must not fuse.
        let alias = plain(
            UOp::Alu2 {
                kind: crate::predecode::Alu2Kind::IAdd,
                d: 0,
                a: 0,
                b: PSrc::Reg(1),
            },
            WriteMode::Full,
        );
        let mut alias_shadow = alias;
        alias_shadow.write = WriteMode::EccOnly;
        assert!(!is_ecc_pair(&alias, &alias_shadow));

        // Different write-mode order is not the SwapCodes shadow idiom.
        assert!(!is_ecc_pair(&shadow, &orig));
    }

    #[test]
    fn pair_classification_covers_the_protection_idioms() {
        let setp = plain(
            UOp::SetP {
                p: 3,
                skip: false,
                cmp: swapcodes_isa::CmpOp::Ne,
                ty: swapcodes_isa::CmpTy::I32,
                a: 0,
                b: PSrc::Reg(1),
            },
            WriteMode::Full,
        );
        let mut bra = plain(UOp::Bra { target: 9 }, WriteMode::Full);
        bra.guard = Guard::If(3);
        assert!(is_setp_bra(&setp, &bra));
        bra.guard = Guard::If(2);
        assert!(!is_setp_bra(&setp, &bra), "different predicate bit");

        let mov = plain(
            UOp::Mov {
                d: 4,
                a: PSrc::Imm(7),
            },
            WriteMode::Full,
        );
        assert!(blockable(&mov.uop));
        assert!(!blockable(&UOp::Bar));
        assert!(!blockable(&UOp::Exit));
        assert!(!blockable(&UOp::Bra { target: 0 }));
    }

    #[test]
    fn compile_reports_fused_pairs() {
        use swapcodes_isa::{KernelBuilder, Op, Reg, Src};
        let mut b = KernelBuilder::new("t2");
        b.push(Op::Mov {
            d: Reg(0),
            a: Src::Imm(1),
        });
        b.push(Op::Mov {
            d: Reg(1),
            a: Src::Imm(2),
        });
        b.push(Op::Exit);
        let pk = PredecodedKernel::new(&b.finish());
        let ck = CompiledKernel::compile(&pk);
        assert_eq!(ck.len(), 3);
        assert!(!ck.is_empty());
        assert_eq!(ck.fused_pairs(), 1, "the two Movs fuse as a superblock");
        let dbg = format!("{ck:?}");
        assert!(dbg.contains("fused_pairs"));
    }
}
