//! Architecture-level fault specification: the fault-model taxonomy.
//!
//! The original model was a single transient XOR strike on the *result* of
//! one dynamic instruction in one lane before write-back — the architectural
//! manifestation of the gate-level single-event errors studied in Fig. 10.
//! This module generalizes that into three classes:
//!
//! * [`FaultClass::Transient`] — the legacy one-shot datapath strike, now
//!   with arbitrary (multi-bit / burst) XOR patterns;
//! * [`FaultClass::Control`] — a one-shot strike on *parallelism-management*
//!   state (predicate registers, active/divergence masks, barrier wait
//!   state, scheduler slot PC) delivered at a chosen dynamic instruction
//!   index rather than an eligible-datapath index;
//! * [`FaultClass::StuckAt`] — a permanent (or intermittent) stuck-at-0/1
//!   defect at a netlist site that re-asserts on every eligible access from
//!   its activation point onward.
//!
//! Which half of a duplicated pair absorbs a datapath hit decides whether
//! the data or the check bits of the swapped codeword are affected; control
//! faults bypass the duplicated datapath entirely, which is exactly why
//! they probe the coverage boundary of instruction-duplication codes.

use serde::{Deserialize, Serialize};

/// Warp width: lanes are indexed `0..32`.
pub const WARP_WIDTH: u32 = 32;
/// Architectural result width in bits: single-bit strikes pick `0..32`.
pub const RESULT_WIDTH: u32 = 32;

/// Which instruction of a duplicated pair the fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The data-producing instruction (an `ecc_only` shadow is never hit by
    /// this target).
    Original,
    /// The check-producing shadow instruction (requires Swap-ECC-style
    /// duplication to be meaningful).
    Shadow,
}

/// Which piece of control state a [`FaultClass::Control`] strike corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlTarget {
    /// XOR the per-lane predicate byte of `lane` with the low 8 bits of the
    /// strike mask: subsequent guarded instructions mispredicate.
    Predicate,
    /// XOR the issuing fragment's active mask with the low 32 bits of the
    /// strike mask; a zeroed fragment silently retires its threads.
    ActiveMask,
    /// Flip the issuing warp's barrier wait flag — the architectural face of
    /// a corrupted barrier arrival counter: the warp either arrives at a
    /// barrier nobody called or sails past one it should have joined.
    Barrier,
    /// XOR the scheduler slot's resume PC with the low bits of the strike
    /// mask: the warp's next fetch comes from the wrong place (a wild PC
    /// past the kernel end retires the warp).
    SchedulerSlot,
}

/// Parameters of a [`FaultClass::StuckAt`] defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckAtSpec {
    /// Stuck level: `true` forces the masked bits to 1, `false` to 0.
    pub value: bool,
    /// Netlist site identifier (from `swapcodes-gates` site enumeration) —
    /// carried for reporting/area-weighting only, not interpreted here.
    pub site: u32,
    /// `0` = permanent (asserts on every eligible access from activation
    /// on). `p > 0` = intermittent: active during alternating windows of
    /// `p` eligible accesses (on for `p`, off for `p`, ...).
    pub period: u32,
}

/// The fault class: what kind of physical defect the strike models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// One-shot particle strike on a datapath result before write-back.
    Transient,
    /// One-shot strike on control / parallelism-management state, delivered
    /// at dynamic instruction `eligible_index` (reinterpreted as a *global
    /// dynamic* index, not an eligible-datapath index).
    Control(ControlTarget),
    /// Permanent or intermittent stuck-at defect re-asserting on every
    /// eligible access with counter `>= eligible_index`.
    StuckAt(StuckAtSpec),
}

/// Structured construction/validation error for a [`FaultSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpecError {
    /// `lane >= WARP_WIDTH`: the strike would never match any lane and the
    /// trial would silently become a no-op.
    LaneOutOfRange {
        /// The rejected lane.
        lane: u32,
    },
    /// `bit >= RESULT_WIDTH` in a single-bit/burst constructor: the shifted
    /// mask would overflow or miss the architectural result.
    BitOutOfRange {
        /// The rejected bit index.
        bit: u32,
    },
    /// A zero strike mask on a class that applies one: the fault could
    /// never change any state.
    NullMask,
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LaneOutOfRange { lane } => {
                write!(f, "lane {lane} out of range (warp width {WARP_WIDTH})")
            }
            Self::BitOutOfRange { bit } => {
                write!(f, "bit {bit} out of range (result width {RESULT_WIDTH})")
            }
            Self::NullMask => write!(f, "strike mask is zero: fault would be a no-op"),
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A single fault to inject during functional execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// For datapath classes (`Transient`, `StuckAt`): strike / activate at
    /// the `n`-th *duplication-eligible* dynamic warp-instruction (counted
    /// across the whole execution, zero-based) whose role matches `target`.
    /// For `Control`: deliver at the warp issuing *global dynamic*
    /// instruction `n` (all instructions count, both roles).
    pub eligible_index: u64,
    /// Lane whose result (or predicate byte) is corrupted. Ignored by
    /// `ActiveMask` / `Barrier` / `SchedulerSlot` control strikes, which
    /// hit warp-wide state.
    pub lane: u32,
    /// Strike mask. `Transient`: XOR pattern applied to the 32-bit (or
    /// 64-bit, for pair results) output. `StuckAt`: the bit positions
    /// forced to the stuck level. `Control`: the XOR pattern for the
    /// targeted control word (predicate byte, active mask, or PC).
    pub xor_mask: u64,
    /// Which half of the duplicated pair absorbs a datapath hit. Ignored by
    /// control strikes.
    pub target: FaultTarget,
    /// The fault class.
    pub class: FaultClass,
}

impl FaultSpec {
    /// A single-bit transient flip of `bit` in the result of eligible
    /// instruction `eligible_index`, lane `lane`, hitting the original
    /// instruction.
    #[must_use]
    pub fn single_bit(eligible_index: u64, lane: u32, bit: u32) -> Self {
        Self {
            eligible_index,
            lane,
            xor_mask: 1u64 << bit,
            target: FaultTarget::Original,
            class: FaultClass::Transient,
        }
    }

    /// The same flip, striking the shadow instruction instead.
    #[must_use]
    pub fn single_bit_shadow(eligible_index: u64, lane: u32, bit: u32) -> Self {
        Self {
            target: FaultTarget::Shadow,
            ..Self::single_bit(eligible_index, lane, bit)
        }
    }

    /// Validated [`Self::single_bit`]: rejects out-of-range lanes and bits
    /// instead of silently masking to a no-op strike.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError::LaneOutOfRange`] when `lane >= 32`,
    /// [`FaultSpecError::BitOutOfRange`] when `bit >= 32`.
    pub fn try_single_bit(
        eligible_index: u64,
        lane: u32,
        bit: u32,
    ) -> Result<Self, FaultSpecError> {
        if lane >= WARP_WIDTH {
            return Err(FaultSpecError::LaneOutOfRange { lane });
        }
        if bit >= RESULT_WIDTH {
            return Err(FaultSpecError::BitOutOfRange { bit });
        }
        Ok(Self::single_bit(eligible_index, lane, bit))
    }

    /// Validated shadow-side [`Self::single_bit_shadow`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::try_single_bit`].
    pub fn try_single_bit_shadow(
        eligible_index: u64,
        lane: u32,
        bit: u32,
    ) -> Result<Self, FaultSpecError> {
        Ok(Self {
            target: FaultTarget::Shadow,
            ..Self::try_single_bit(eligible_index, lane, bit)?
        })
    }

    /// A transient burst: `width` adjacent bits starting at `bit` flip at
    /// once — the spatially-patterned multi-bit upsets field studies report.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError::LaneOutOfRange`] when `lane >= 32`,
    /// [`FaultSpecError::BitOutOfRange`] when the burst would spill past the
    /// result width, [`FaultSpecError::NullMask`] when `width == 0`.
    pub fn try_burst(
        eligible_index: u64,
        lane: u32,
        bit: u32,
        width: u32,
    ) -> Result<Self, FaultSpecError> {
        if lane >= WARP_WIDTH {
            return Err(FaultSpecError::LaneOutOfRange { lane });
        }
        if width == 0 {
            return Err(FaultSpecError::NullMask);
        }
        let top = bit
            .checked_add(width - 1)
            .ok_or(FaultSpecError::BitOutOfRange { bit })?;
        if top >= RESULT_WIDTH {
            return Err(FaultSpecError::BitOutOfRange { bit: top });
        }
        let mask = if width >= 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << bit
        };
        Ok(Self {
            eligible_index,
            lane,
            xor_mask: mask,
            target: FaultTarget::Original,
            class: FaultClass::Transient,
        })
    }

    /// A control-state strike on `target_state`, delivered at global
    /// dynamic instruction `dyn_index`.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError::LaneOutOfRange`] when `lane >= 32`,
    /// [`FaultSpecError::NullMask`] when the mask is zero and the targeted
    /// state is mask-driven (everything except `Barrier`, which is a flag
    /// flip and needs no mask).
    pub fn try_control(
        dyn_index: u64,
        lane: u32,
        target_state: ControlTarget,
        xor_mask: u64,
    ) -> Result<Self, FaultSpecError> {
        if lane >= WARP_WIDTH {
            return Err(FaultSpecError::LaneOutOfRange { lane });
        }
        if xor_mask == 0 && target_state != ControlTarget::Barrier {
            return Err(FaultSpecError::NullMask);
        }
        Ok(Self {
            eligible_index: dyn_index,
            lane,
            xor_mask,
            target: FaultTarget::Original,
            class: FaultClass::Control(target_state),
        })
    }

    /// A stuck-at defect forcing `bit` to `value` on every matching-side
    /// eligible access from eligible counter `activation_index` onward.
    /// `period == 0` is permanent; `period > 0` asserts in alternating
    /// on/off windows of `period` accesses.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError::LaneOutOfRange`] when `lane >= 32`,
    /// [`FaultSpecError::BitOutOfRange`] when `bit >= 32`.
    pub fn try_stuck_at(
        activation_index: u64,
        lane: u32,
        bit: u32,
        value: bool,
        site: u32,
        period: u32,
        target: FaultTarget,
    ) -> Result<Self, FaultSpecError> {
        if lane >= WARP_WIDTH {
            return Err(FaultSpecError::LaneOutOfRange { lane });
        }
        if bit >= RESULT_WIDTH {
            return Err(FaultSpecError::BitOutOfRange { bit });
        }
        Ok(Self {
            eligible_index: activation_index,
            lane,
            xor_mask: 1u64 << bit,
            target,
            class: FaultClass::StuckAt(StuckAtSpec {
                value,
                site,
                period,
            }),
        })
    }

    /// Validate an arbitrary (possibly hand-built) spec against the same
    /// rules the `try_*` constructors enforce.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] naming the first violated rule.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        if self.lane >= WARP_WIDTH {
            return Err(FaultSpecError::LaneOutOfRange { lane: self.lane });
        }
        let needs_mask = !matches!(self.class, FaultClass::Control(ControlTarget::Barrier));
        if needs_mask && self.xor_mask == 0 {
            return Err(FaultSpecError::NullMask);
        }
        Ok(())
    }

    /// Does this fault fire on the eligible-datapath access numbered `seen`
    /// (zero-based, matching side)? Control faults never fire here — they
    /// are delivered on the dynamic-instruction path instead.
    #[must_use]
    pub fn fires_at(&self, seen: u64) -> bool {
        match self.class {
            FaultClass::Transient => seen == self.eligible_index,
            FaultClass::StuckAt(sa) => {
                if seen < self.eligible_index {
                    return false;
                }
                let elapsed = seen - self.eligible_index;
                sa.period == 0 || (elapsed / u64::from(sa.period)).is_multiple_of(2)
            }
            FaultClass::Control(_) => false,
        }
    }

    /// Is any eligible access with counter `>= seen` still able to fire?
    /// Transients are spent once the counter passes `eligible_index`;
    /// stuck-at defects are never spent; control faults never fire on this
    /// path at all.
    #[must_use]
    pub fn spent_at(&self, seen: u64) -> bool {
        match self.class {
            FaultClass::Transient => seen > self.eligible_index,
            FaultClass::StuckAt(_) => false,
            FaultClass::Control(_) => true,
        }
    }

    /// Corrupt a 32-bit result according to the class.
    #[must_use]
    pub fn apply32(&self, v: u32) -> u32 {
        match self.class {
            FaultClass::Transient => v ^ self.xor_mask as u32,
            FaultClass::StuckAt(sa) => {
                let m = self.xor_mask as u32;
                if sa.value {
                    v | m
                } else {
                    v & !m
                }
            }
            FaultClass::Control(_) => v,
        }
    }

    /// Corrupt a 64-bit (pair) result according to the class.
    #[must_use]
    pub fn apply64(&self, v: u64) -> u64 {
        match self.class {
            FaultClass::Transient => v ^ self.xor_mask,
            FaultClass::StuckAt(sa) => {
                if sa.value {
                    v | self.xor_mask
                } else {
                    v & !self.xor_mask
                }
            }
            FaultClass::Control(_) => v,
        }
    }

    /// Is this a control-state strike?
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self.class, FaultClass::Control(_))
    }

    /// The control target, when this is a control strike.
    #[must_use]
    pub fn control_target(&self) -> Option<ControlTarget> {
        match self.class {
            FaultClass::Control(t) => Some(t),
            _ => None,
        }
    }

    /// Does the fault hit the duplicated datapath (and therefore consult
    /// the eligible counters)?
    #[must_use]
    pub fn is_datapath(&self) -> bool {
        !self.is_control()
    }

    /// Does the defect survive a relaunch from the input snapshot? A
    /// transient or control strike already happened and does not recur; a
    /// stuck-at site is physically broken and re-asserts on re-execution.
    #[must_use]
    pub fn persists_across_relaunch(&self) -> bool {
        matches!(self.class, FaultClass::StuckAt(_))
    }

    /// A short stable label for per-class tally bucketing.
    #[must_use]
    pub fn class_label(&self) -> &'static str {
        match self.class {
            FaultClass::Transient => "transient",
            FaultClass::Control(_) => "control",
            FaultClass::StuckAt(_) => "stuckat",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let f = FaultSpec::single_bit(10, 3, 7);
        assert_eq!(f.xor_mask, 0x80);
        assert_eq!(f.target, FaultTarget::Original);
        assert_eq!(f.class, FaultClass::Transient);
        let s = FaultSpec::single_bit_shadow(10, 3, 7);
        assert_eq!(s.target, FaultTarget::Shadow);
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert_eq!(
            FaultSpec::try_single_bit(0, 32, 0),
            Err(FaultSpecError::LaneOutOfRange { lane: 32 })
        );
        assert_eq!(
            FaultSpec::try_single_bit(0, 0, 32),
            Err(FaultSpecError::BitOutOfRange { bit: 32 })
        );
        assert_eq!(
            FaultSpec::try_single_bit_shadow(0, 99, 0),
            Err(FaultSpecError::LaneOutOfRange { lane: 99 })
        );
        assert!(FaultSpec::try_single_bit(0, 31, 31).is_ok());
    }

    #[test]
    fn burst_masks_are_contiguous_and_bounded() {
        let b = FaultSpec::try_burst(5, 1, 4, 3).expect("burst");
        assert_eq!(b.xor_mask, 0b111 << 4);
        assert_eq!(
            FaultSpec::try_burst(0, 0, 30, 4),
            Err(FaultSpecError::BitOutOfRange { bit: 33 })
        );
        assert_eq!(
            FaultSpec::try_burst(0, 0, 0, 0),
            Err(FaultSpecError::NullMask)
        );
    }

    #[test]
    fn control_constructor_and_predicates() {
        let c = FaultSpec::try_control(100, 2, ControlTarget::Predicate, 1).expect("control");
        assert!(c.is_control());
        assert_eq!(c.control_target(), Some(ControlTarget::Predicate));
        assert!(!c.fires_at(100), "control never fires on the eligible path");
        assert!(c.spent_at(0));
        assert!(!c.persists_across_relaunch());
        assert_eq!(
            FaultSpec::try_control(0, 0, ControlTarget::ActiveMask, 0),
            Err(FaultSpecError::NullMask)
        );
        // Barrier flips need no mask.
        assert!(FaultSpec::try_control(0, 0, ControlTarget::Barrier, 0).is_ok());
    }

    #[test]
    fn stuck_at_fires_from_activation_onward() {
        let f = FaultSpec::try_stuck_at(4, 0, 3, true, 17, 0, FaultTarget::Original).expect("sa");
        assert!(!f.fires_at(3));
        assert!(f.fires_at(4));
        assert!(f.fires_at(4000));
        assert!(!f.spent_at(u64::MAX));
        assert!(f.persists_across_relaunch());
        assert_eq!(f.apply32(0), 1 << 3);
        assert_eq!(f.apply32(u32::MAX), u32::MAX);
        let z = FaultSpec::try_stuck_at(0, 0, 3, false, 17, 0, FaultTarget::Shadow).expect("sa0");
        assert_eq!(z.apply32(u32::MAX), !(1u32 << 3));
        assert_eq!(z.apply32(0), 0);
    }

    #[test]
    fn intermittent_duty_windows_alternate() {
        let f = FaultSpec::try_stuck_at(10, 0, 0, true, 0, 2, FaultTarget::Original).expect("sa");
        // on for 2 (10,11), off for 2 (12,13), on again (14,15)...
        assert!(f.fires_at(10) && f.fires_at(11));
        assert!(!f.fires_at(12) && !f.fires_at(13));
        assert!(f.fires_at(14));
    }

    #[test]
    fn stuck_at_application_is_idempotent() {
        let f = FaultSpec::try_stuck_at(0, 0, 9, true, 1, 0, FaultTarget::Original).expect("sa");
        for v in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            assert_eq!(f.apply32(f.apply32(v)), f.apply32(v));
            let w = u64::from(v) << 16;
            assert_eq!(f.apply64(f.apply64(w)), f.apply64(w));
        }
    }

    #[test]
    fn transient_apply_matches_legacy_xor() {
        let f = FaultSpec::single_bit(0, 0, 7);
        assert_eq!(f.apply32(0xFF), 0xFF ^ 0x80);
        assert_eq!(f.apply64(0xFF), 0xFF ^ 0x80);
        assert!(f.fires_at(0) && !f.fires_at(1) && f.spent_at(1));
    }
}
