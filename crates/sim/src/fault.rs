//! Architecture-level transient fault specification.
//!
//! A pipeline fault corrupts the *result* of one dynamic instruction in one
//! lane before write-back — the architectural manifestation of the
//! gate-level single-event errors studied in Fig. 10. Which half of a
//! duplicated pair absorbs the hit decides whether the data or the check
//! bits of the swapped codeword are affected.

use serde::{Deserialize, Serialize};

/// Which instruction of a duplicated pair the fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The data-producing instruction (an `ecc_only` shadow is never hit by
    /// this target).
    Original,
    /// The check-producing shadow instruction (requires Swap-ECC-style
    /// duplication to be meaningful).
    Shadow,
}

/// A single transient fault to inject during functional execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Strike the `n`-th *duplication-eligible* dynamic warp-instruction
    /// (counted across the whole execution, zero-based) whose role matches
    /// `target`.
    pub eligible_index: u64,
    /// Lane whose result is corrupted.
    pub lane: u32,
    /// XOR pattern applied to the 32-bit (or 64-bit, for pair results)
    /// output.
    pub xor_mask: u64,
    /// Which half of the duplicated pair absorbs the hit.
    pub target: FaultTarget,
}

impl FaultSpec {
    /// A single-bit flip of `bit` in the result of eligible instruction
    /// `eligible_index`, lane `lane`, hitting the original instruction.
    #[must_use]
    pub fn single_bit(eligible_index: u64, lane: u32, bit: u32) -> Self {
        Self {
            eligible_index,
            lane,
            xor_mask: 1u64 << bit,
            target: FaultTarget::Original,
        }
    }

    /// The same flip, striking the shadow instruction instead.
    #[must_use]
    pub fn single_bit_shadow(eligible_index: u64, lane: u32, bit: u32) -> Self {
        Self {
            target: FaultTarget::Shadow,
            ..Self::single_bit(eligible_index, lane, bit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let f = FaultSpec::single_bit(10, 3, 7);
        assert_eq!(f.xor_mask, 0x80);
        assert_eq!(f.target, FaultTarget::Original);
        let s = FaultSpec::single_bit_shadow(10, 3, 7);
        assert_eq!(s.target, FaultTarget::Shadow);
    }
}
