//! Detect-and-recover: the subsystem that closes SwapCodes' detection loop.
//!
//! The paper stops at detection — every scheme converts a pipeline error
//! into a DUE (or a trap, or a watchdog kill). This module adds the layer a
//! deployed system needs on top: a [`RecoveryEngine`] that converts those
//! detections back into completed, *correct* executions through a bounded
//! escalation ladder of pluggable policies:
//!
//! 1. **In-place ECC correction** (`EccCorrect`, opt-in): a DUE whose
//!    syndrome identifies a single data bit is corrected at the register
//!    through [`crate::regfile::WarpRegFile::correct_in_place`] and the warp
//!    keeps running. Cheapest — no rollback at all — but under swapped
//!    codewords it restores the *shadow's* value, so a shadow-side strike is
//!    miscorrected. The policy is off by default and its miscorrection rate
//!    is measured by the injection campaigns, never assumed zero.
//! 2. **Warp-level checkpoint/replay** (`WarpReplay`): the executor
//!    snapshots each warp's architectural state (PC fragments, predicates,
//!    the full ECC-protected register file) every
//!    [`RecoverySpec::checkpoint_interval`] instructions and at every
//!    barrier release. On a detection it rolls back *only the faulting
//!    warp* and replays — legal only while the warp has not externalized
//!    state (no stores, atomics or crossed barriers since the snapshot) and
//!    bounded by [`RecoverySpec::max_replays_per_warp`]. Replayed
//!    instructions are refunded to the fuel budget, so each replay attempt
//!    runs on a fresh budget instead of inheriting a half-spent one.
//! 3. **Kernel re-execution** (`Relaunch`): restore the input snapshot and
//!    relaunch the whole kernel with a fresh fuel budget and the (transient)
//!    fault cleared, at most [`RecoveryConfig::max_relaunches`] times.
//!
//! A run that still ends in a detection or a structural error after the
//! whole ladder is reported [`RecoveryOutcome::Unrecoverable`] — the ladder
//! always terminates, even when every attempt hangs, because every rung is
//! bounded and every attempt is fueled.

use serde::{Deserialize, Serialize};
use swapcodes_isa::Kernel;

use crate::exec::{Detection, ExecConfig, ExecError, ExecOutcome, Executor, Launch};
use crate::memory::GlobalMemory;

/// The recovery policy that (last) acted on a run — ordered by cost, which
/// is also the escalation order of the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// A correctable syndrome was rewritten in place at the register file.
    EccCorrect,
    /// The faulting warp was rolled back to its last clean checkpoint and
    /// replayed.
    WarpReplay,
    /// The whole kernel was re-executed from the input snapshot.
    Relaunch,
}

impl RecoveryPolicy {
    /// Short stable label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::EccCorrect => "correct",
            Self::WarpReplay => "replay",
            Self::Relaunch => "relaunch",
        }
    }
}

/// In-executor recovery knobs (the part of the ladder the executor itself
/// implements; see [`crate::exec::ExecConfig::recovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoverySpec {
    /// Snapshot each warp's state every this many executed instructions
    /// (checkpoints are also refreshed at every barrier release, which is
    /// what makes rollback barrier-safe).
    pub checkpoint_interval: u64,
    /// Bounded retry at warp granularity: rollbacks allowed per warp before
    /// the detection escalates out of the executor.
    pub max_replays_per_warp: u32,
    /// Route single-data-bit DUE syndromes through in-place correction
    /// instead of halting. **Unsafe by design** (miscorrects shadow-side
    /// strikes); off in [`RecoverySpec::default`].
    pub storage_correction: bool,
}

impl Default for RecoverySpec {
    fn default() -> Self {
        Self {
            checkpoint_interval: 256,
            max_replays_per_warp: 3,
            storage_correction: false,
        }
    }
}

/// Work performed by the recovery machinery during one or more attempts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Warp checkpoints taken.
    pub checkpoints: u64,
    /// Warp rollbacks performed.
    pub replays: u64,
    /// Dynamic instructions discarded by rollbacks (and re-executed).
    pub replayed_instructions: u64,
    /// In-place ECC corrections applied.
    pub corrections: u64,
    /// Whole-kernel re-executions performed by the engine.
    pub relaunches: u32,
}

impl RecoveryStats {
    /// Accumulate another attempt's stats into this one.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.checkpoints += other.checkpoints;
        self.replays += other.replays;
        self.replayed_instructions += other.replayed_instructions;
        self.corrections += other.corrections;
        self.relaunches += other.relaunches;
    }

    /// Total recovery actions taken (corrections + rollbacks + relaunches) —
    /// the `attempts` reported in `Recovered{policy, attempts}` buckets.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        u32::try_from(self.corrections + self.replays + u64::from(self.relaunches))
            .unwrap_or(u32::MAX)
    }

    /// The most expensive policy that acted, if any (the one a
    /// `Recovered` outcome is attributed to).
    #[must_use]
    pub fn dominant_policy(&self) -> Option<RecoveryPolicy> {
        if self.relaunches > 0 {
            Some(RecoveryPolicy::Relaunch)
        } else if self.replays > 0 {
            Some(RecoveryPolicy::WarpReplay)
        } else if self.corrections > 0 {
            Some(RecoveryPolicy::EccCorrect)
        } else {
            None
        }
    }
}

/// Full ladder configuration for a [`RecoveryEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// In-executor policies (checkpoint/replay and optional correction).
    pub spec: RecoverySpec,
    /// Bounded retry at kernel granularity: relaunches from the input
    /// snapshot after the in-executor rungs fail.
    pub max_relaunches: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            spec: RecoverySpec::default(),
            max_relaunches: 1,
        }
    }
}

impl RecoveryConfig {
    /// A ladder with every rung disabled (recovery off — detections are
    /// terminal, as in the plain campaigns).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            spec: RecoverySpec {
                checkpoint_interval: u64::MAX,
                max_replays_per_warp: 0,
                storage_correction: false,
            },
            max_relaunches: 0,
        }
    }
}

/// How a [`RecoveryEngine::run`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryOutcome {
    /// No detection at all: the run completed without recovery acting.
    Clean,
    /// A detection occurred and the ladder converted it into a completed
    /// run. `policy` is the most expensive rung that acted; `attempts` the
    /// total recovery actions taken.
    Recovered {
        /// Most expensive policy that acted on the run.
        policy: RecoveryPolicy,
        /// Total recovery actions (corrections + rollbacks + relaunches).
        attempts: u32,
    },
    /// The ladder was exhausted with a detection or structural error still
    /// standing.
    Unrecoverable {
        /// Total recovery actions spent before giving up.
        attempts: u32,
    },
}

impl RecoveryOutcome {
    /// `true` for [`RecoveryOutcome::Recovered`].
    #[must_use]
    pub fn is_recovered(self) -> bool {
        matches!(self, Self::Recovered { .. })
    }
}

/// Result of one engine run: the final outcome, accounting, and the memory
/// of the accepted (or last) attempt.
#[derive(Debug)]
pub struct RecoveryRun {
    /// How the ladder ended.
    pub outcome: RecoveryOutcome,
    /// Recovery work summed over every attempt.
    pub stats: RecoveryStats,
    /// Global memory after the accepted attempt (last attempt when
    /// unrecoverable) — compare against golden output to audit recovery.
    pub mem: GlobalMemory,
    /// Executor outcome of the final attempt, when it returned one.
    pub exec: Option<ExecOutcome>,
    /// Residual detection of the final attempt (`None` when recovered).
    pub detection: Detection,
    /// Residual structural error of the final attempt (e.g. a hang that
    /// survived every relaunch).
    pub error: Option<ExecError>,
}

/// The detect-and-recover driver: wraps fueled execution in the bounded
/// escalation ladder described at module level.
#[derive(Debug, Clone)]
pub struct RecoveryEngine {
    /// Base executor configuration for attempt 0 (protection, fault, fuel).
    /// The engine arms `exec.recovery` itself from [`RecoveryEngine::config`].
    pub exec: ExecConfig,
    /// Ladder configuration.
    pub config: RecoveryConfig,
}

impl RecoveryEngine {
    /// An engine over `exec` with the default ladder.
    #[must_use]
    pub fn new(exec: ExecConfig) -> Self {
        Self {
            exec,
            config: RecoveryConfig::default(),
        }
    }

    /// Run `kernel` under the ladder, starting from the pristine `input`
    /// memory snapshot. The snapshot is cloned per attempt, so relaunches
    /// always restart from uncorrupted inputs.
    ///
    /// Every attempt gets a **fresh fuel budget**: the executor counts fuel
    /// per run, warp replays refund the discarded instructions, and each
    /// relaunch is a new fueled run — so a kernel that hangs on every
    /// attempt costs at most `(1 + max_relaunches) * fuel` steps before the
    /// ladder reports [`RecoveryOutcome::Unrecoverable`].
    #[must_use]
    pub fn run(&self, kernel: &Kernel, launch: Launch, input: &GlobalMemory) -> RecoveryRun {
        let mut stats = RecoveryStats::default();
        let mut cfg = self.exec.clone();
        cfg.recovery = Some(self.config.spec);

        // Attempt 0: the (possibly faulted) run with warp replay armed.
        let mut mem = input.clone();
        let mut last = Executor {
            config: cfg.clone(),
        }
        .run(kernel, launch, &mut mem);
        if let Ok(out) = &last {
            stats.merge(&out.recovery);
            if out.detection == Detection::None {
                let outcome = match stats.dominant_policy() {
                    None => RecoveryOutcome::Clean,
                    Some(policy) => RecoveryOutcome::Recovered {
                        policy,
                        attempts: stats.attempts(),
                    },
                };
                return finish(outcome, stats, mem, last);
            }
        }

        // Escalate: relaunch from the input snapshot. A transient or
        // control-state strike already fired (attempt 0) and does not recur
        // on re-execution, so it is disarmed; a permanent stuck-at site is
        // physical and stays armed across every relaunch.
        if cfg.fault.is_some_and(|f| !f.persists_across_relaunch()) {
            cfg.fault = None;
        }
        for _ in 0..self.config.max_relaunches {
            stats.relaunches += 1;
            let mut m = input.clone();
            last = Executor {
                config: cfg.clone(),
            }
            .run(kernel, launch, &mut m);
            mem = m;
            if let Ok(out) = &last {
                stats.merge(&out.recovery);
                if out.detection == Detection::None {
                    return finish(
                        RecoveryOutcome::Recovered {
                            policy: RecoveryPolicy::Relaunch,
                            attempts: stats.attempts(),
                        },
                        stats,
                        mem,
                        last,
                    );
                }
            }
        }

        let attempts = stats.attempts();
        finish(
            RecoveryOutcome::Unrecoverable { attempts },
            stats,
            mem,
            last,
        )
    }
}

fn finish(
    outcome: RecoveryOutcome,
    stats: RecoveryStats,
    mem: GlobalMemory,
    last: Result<ExecOutcome, ExecError>,
) -> RecoveryRun {
    let (exec, detection, error) = match last {
        Ok(out) => {
            let det = out.detection;
            (Some(out), det, None)
        }
        Err(e) => (None, Detection::None, Some(e)),
    };
    RecoveryRun {
        outcome,
        stats,
        mem,
        exec,
        detection,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regfile::Protection;
    use swapcodes_isa::{KernelBuilder, Op, Reg, SpecialReg, Src};

    fn spin_kernel() -> Kernel {
        let mut k = KernelBuilder::new("spin");
        k.push(Op::S2R {
            d: Reg(0),
            sr: SpecialReg::TidX,
        });
        let top = k.label();
        k.bind(top);
        k.push(Op::IAdd {
            d: Reg(1),
            a: Reg(1),
            b: Src::Imm(1),
        });
        k.branch_to(top);
        k.push(Op::Exit);
        k.finish()
    }

    /// Satellite guarantee: the ladder terminates even when *every* attempt
    /// hangs, and each attempt gets its own fresh fuel budget rather than
    /// inheriting a drained one.
    #[test]
    fn ladder_terminates_when_every_attempt_hangs() {
        let fuel = 2_000u64;
        let engine = RecoveryEngine {
            exec: ExecConfig {
                fuel: Some(fuel),
                ..ExecConfig::default()
            },
            config: RecoveryConfig {
                max_relaunches: 3,
                ..RecoveryConfig::default()
            },
        };
        let input = GlobalMemory::new(64);
        let run = engine.run(&spin_kernel(), Launch::grid(1, 32), &input);
        assert_eq!(run.outcome, RecoveryOutcome::Unrecoverable { attempts: 3 });
        assert_eq!(run.stats.relaunches, 3);
        // Each hang individually exhausted a full budget — the relaunches
        // did not inherit a half-spent budget from attempt 0.
        match run.error {
            Some(ExecError::Hang { steps }) => assert!(steps > fuel),
            other => panic!("expected residual Hang, got {other:?}"),
        }
    }

    /// A clean kernel under an armed engine completes with `Clean` and takes
    /// only the periodic checkpoints (no rollbacks, no relaunches).
    #[test]
    fn clean_run_is_clean_and_checkpoints() {
        let mut k = KernelBuilder::new("store42");
        k.push(Op::S2R {
            d: Reg(0),
            sr: SpecialReg::TidX,
        });
        k.push(Op::IMul {
            d: Reg(1),
            a: Reg(0),
            b: Src::Imm(4),
        });
        k.push(Op::Mov {
            d: Reg(2),
            a: Src::Imm(42),
        });
        k.push(Op::St {
            space: swapcodes_isa::MemSpace::Global,
            addr: Reg(1),
            offset: 0,
            v: Reg(2),
            width: swapcodes_isa::MemWidth::W32,
        });
        k.push(Op::Exit);
        let kernel = k.finish();
        let engine = RecoveryEngine::new(ExecConfig {
            protection: Protection::SecDedDp,
            ..ExecConfig::default()
        });
        let input = GlobalMemory::new(32 * 4);
        let run = engine.run(&kernel, Launch::grid(1, 32), &input);
        assert_eq!(run.outcome, RecoveryOutcome::Clean);
        assert_eq!(run.stats.replays, 0);
        assert_eq!(run.stats.relaunches, 0);
        assert!(run.stats.checkpoints > 0, "initial checkpoint expected");
        assert_eq!(run.mem.read(0), 42);
    }

    #[test]
    fn disabled_ladder_leaves_detections_terminal() {
        let engine = RecoveryEngine {
            exec: ExecConfig {
                fuel: Some(500),
                ..ExecConfig::default()
            },
            config: RecoveryConfig::disabled(),
        };
        let input = GlobalMemory::new(64);
        let run = engine.run(&spin_kernel(), Launch::grid(1, 32), &input);
        assert_eq!(run.outcome, RecoveryOutcome::Unrecoverable { attempts: 0 });
        assert_eq!(run.stats.relaunches, 0);
    }

    #[test]
    fn policy_ordering_and_labels() {
        assert!(RecoveryPolicy::EccCorrect < RecoveryPolicy::WarpReplay);
        assert!(RecoveryPolicy::WarpReplay < RecoveryPolicy::Relaunch);
        let mut s = RecoveryStats {
            corrections: 2,
            ..RecoveryStats::default()
        };
        assert_eq!(s.dominant_policy(), Some(RecoveryPolicy::EccCorrect));
        s.replays = 1;
        assert_eq!(s.dominant_policy(), Some(RecoveryPolicy::WarpReplay));
        s.relaunches = 1;
        assert_eq!(s.dominant_policy(), Some(RecoveryPolicy::Relaunch));
        assert_eq!(s.attempts(), 4);
        assert_eq!(RecoveryPolicy::Relaunch.label(), "relaunch");
    }
}
