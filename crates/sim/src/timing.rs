//! Cycle-level SM timing: replay functional traces against schedulers,
//! scoreboard, functional-unit throughput and memory bandwidth.
//!
//! The model captures the three first-order effects duplication has on a
//! SIMT core (§I of the paper): extra issue slots for checking code, lost
//! occupancy from shadow register pressure, and saturation of arithmetic
//! throughput from doubled operations — while remaining fast enough to sweep
//! every workload under every protection scheme.

use serde::{Deserialize, Serialize};
use swapcodes_isa::{FuncUnit, Kernel, Op};

use crate::exec::{ExecConfig, ExecError, Executor, Launch, WarpTrace};
use crate::memory::GlobalMemory;
use crate::occupancy::{occupancy, GpuConfig, Occupancy};
use crate::regfile::Protection;

/// Timing-model parameters (defaults approximate a P100-class SM; times in
/// quarter-cycles where noted).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Hardware limits.
    pub gpu: GpuConfig,
    /// Global-memory load-to-use latency in cycles.
    pub mem_latency: u32,
    /// Shared-memory load-to-use latency in cycles.
    pub shared_latency: u32,
    /// Quarter-cycles of DRAM bandwidth consumed per 128-byte transaction.
    pub txn_interval_qc: u64,
    /// Safety cap on simulated cycles per wave.
    pub max_cycles: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self {
            gpu: GpuConfig {
                // The timing model simulates a single SM and scales waves
                // over the grid; occupancy limits stay P100-like.
                sms: 1,
                ..GpuConfig::default()
            },
            mem_latency: 380,
            shared_latency: 30,
            txn_interval_qc: 2,
            max_cycles: 200_000_000,
        }
    }
}

/// Per-SM issue interval of a functional unit, in quarter-cycles per warp
/// instruction (aggregated over the SM's lanes).
fn fu_interval_qc(fu: FuncUnit) -> u64 {
    match fu {
        FuncUnit::Int | FuncUnit::F32 | FuncUnit::Mov | FuncUnit::Ctrl => 2,
        FuncUnit::F64 | FuncUnit::Mem => 4,
        FuncUnit::Sfu => 8,
    }
}

/// Per-wave resource-pressure statistics from the cycle-level replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaveStats {
    /// Cycles in which no scheduler issued anything (all warps stalled).
    pub idle_cycles: u64,
    /// Issue attempts rejected by the scoreboard (operands in flight).
    pub scoreboard_rejects: u64,
    /// Issue attempts rejected by a busy functional-unit port.
    pub fu_rejects: u64,
    /// Warp instructions issued per functional-unit class
    /// `[Int, F32, F64, Sfu, Mem, Ctrl, Mov]`.
    pub issued_per_fu: [u64; 7],
    /// Peak DRAM queueing delay observed by any access, in cycles.
    pub peak_mem_queue: u64,
}

impl WaveStats {
    /// Instructions issued per cycle over the wave.
    #[must_use]
    pub fn ipc(&self, wave_cycles: u64) -> f64 {
        if wave_cycles == 0 {
            0.0
        } else {
            self.issued_per_fu.iter().sum::<u64>() as f64 / wave_cycles as f64
        }
    }
}

/// Timing result for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Estimated cycles for the whole grid.
    pub cycles: u64,
    /// Cycles for one resident wave on one SM.
    pub wave_cycles: u64,
    /// Sequential wave count across the device in **milli-waves** — the
    /// canonical, fractional scaling semantics (a final 10%-full wave costs
    /// ~10% of a wave, since the timing model assumes the tail wave's CTAs
    /// spread across SMs). Stored as an integer so the struct stays `Eq`
    /// and serialization round-trips exactly. `cycles` is defined from this
    /// field: `cycles = round(wave_cycles * waves_milli / 1000)`; the
    /// whole-wave view is [`KernelTiming::waves`].
    pub waves_milli: u64,
    /// Occupancy achieved.
    pub occupancy: Occupancy,
    /// Warp instructions issued in the simulated wave.
    pub issued: u64,
    /// Dynamic warp instructions of the simulated (functional) portion.
    pub dynamic_instructions: u64,
    /// Resource-pressure statistics of the simulated wave.
    pub stats: WaveStats,
}

impl KernelTiming {
    /// Runtime relative to a baseline timing (the paper's y-axes).
    #[must_use]
    pub fn relative_to(&self, base: &KernelTiming) -> f64 {
        self.cycles as f64 / base.cycles as f64
    }

    /// Whole sequential waves (the fractional count rounded up) — the
    /// human-facing "how many times does the device refill" number.
    #[must_use]
    pub fn waves(&self) -> u64 {
        self.waves_milli.div_ceil(1000).max(1)
    }

    /// The fractional wave count `cycles` actually scales by.
    #[must_use]
    pub fn waves_fractional(&self) -> f64 {
        self.waves_milli as f64 / 1000.0
    }
}

/// Cycle cost of the detect-and-recover machinery, layered *on top of* a
/// kernel's fault-free timing rather than woven into the cycle-level replay:
/// recovery actions are rare (one detection per injected fault) so an
/// additive model keeps the replay untouched while still ranking policies by
/// their true cost — corrections are nearly free, warp replays cost a
/// rollback plus the re-executed instructions, and relaunches pay the whole
/// kernel again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryCostModel {
    /// Cycles to snapshot one warp's architectural state (register file
    /// drain to the checkpoint buffer).
    pub checkpoint_cycles: u64,
    /// Cycles to restore a warp from its checkpoint (pipeline flush plus
    /// register-file restore).
    pub rollback_cycles: u64,
    /// Cycles per re-executed instruction during replay (the warp replays
    /// solo, so it issues roughly one instruction per cycle).
    pub replay_cpi: u64,
    /// Fixed driver/runtime latency of a kernel relaunch, on top of paying
    /// the kernel's own cycles again.
    pub relaunch_latency: u64,
}

impl Default for RecoveryCostModel {
    fn default() -> Self {
        Self {
            checkpoint_cycles: 32,
            rollback_cycles: 64,
            replay_cpi: 1,
            relaunch_latency: 5_000,
        }
    }
}

impl RecoveryCostModel {
    /// Total recovery overhead in cycles for `stats` worth of recovery work
    /// on a kernel whose fault-free run costs `kernel_cycles`.
    #[must_use]
    pub fn overhead_cycles(
        &self,
        stats: &crate::recovery::RecoveryStats,
        kernel_cycles: u64,
    ) -> u64 {
        stats
            .checkpoints
            .saturating_mul(self.checkpoint_cycles)
            .saturating_add(stats.replays.saturating_mul(self.rollback_cycles))
            .saturating_add(stats.replayed_instructions.saturating_mul(self.replay_cpi))
            .saturating_add(
                u64::from(stats.relaunches)
                    .saturating_mul(kernel_cycles.saturating_add(self.relaunch_latency)),
            )
    }
}

/// Simulate `kernel` end to end: functional execution of one occupancy wave
/// (capturing traces), then cycle-level replay, then extrapolation over the
/// full grid.
///
/// # Errors
///
/// Returns [`ExecError::InvalidOp`] when the kernel cannot fit on the SM at
/// all, [`ExecError::Hang`] when the replay exceeds its cycle budget
/// ([`TimingConfig::max_cycles`]), and propagates any functional-execution
/// error.
pub fn simulate_kernel(
    kernel: &Kernel,
    launch: Launch,
    mem: &mut GlobalMemory,
    cfg: &TimingConfig,
) -> Result<KernelTiming, ExecError> {
    simulate_with(kernel, launch, mem, cfg, replay_wave)
}

/// Pre-optimization replay retained verbatim as a differential-testing and
/// perf-baseline reference: same scheduling semantics as [`simulate_kernel`]
/// (asserted by `reference_replay_matches_optimized`), but rebuilding its
/// working sets from scratch every cycle. Not part of the public API.
///
/// # Errors
///
/// Same contract as [`simulate_kernel`].
#[doc(hidden)]
pub fn simulate_kernel_reference(
    kernel: &Kernel,
    launch: Launch,
    mem: &mut GlobalMemory,
    cfg: &TimingConfig,
) -> Result<KernelTiming, ExecError> {
    simulate_with(kernel, launch, mem, cfg, replay_wave_reference)
}

/// Signature shared by the optimized and reference wave-replay backends.
type ReplayFn = fn(&Kernel, &[WarpTrace], &TimingConfig) -> Result<(u64, WaveStats), ExecError>;

fn simulate_with(
    kernel: &Kernel,
    launch: Launch,
    mem: &mut GlobalMemory,
    cfg: &TimingConfig,
    replay: ReplayFn,
) -> Result<KernelTiming, ExecError> {
    let regs = kernel.register_count().max(1);
    let occ = occupancy(&cfg.gpu, regs, launch.threads_per_cta, launch.shared_words);
    if occ.ctas == 0 {
        return Err(ExecError::InvalidOp {
            what: "kernel cannot fit on the SM (zero-CTA occupancy)",
        });
    }
    let wave_ctas = occ.ctas.min(launch.ctas);

    let exec = Executor {
        config: ExecConfig {
            protection: Protection::None,
            collect_trace: true,
            cta_limit: Some(wave_ctas),
            ..ExecConfig::default()
        },
    };
    let out = exec.run(kernel, launch, mem)?;
    let (wave_cycles, stats) = replay(kernel, &out.traces, cfg)?;

    // The timing model simulates one SM and scales the simulated wave over
    // the grid fractionally: grids are assumed large enough (or the device
    // small enough) that per-SM residency matches the occupancy limit.
    // Relative runtimes between schemes are unaffected by the device size.
    let ctas_per_device_wave = f64::from(occ.ctas) * f64::from(cfg.gpu.sms);
    let waves = (f64::from(launch.ctas) / ctas_per_device_wave).max(1.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let waves_milli = ((waves * 1000.0).round() as u64).max(1);
    // `cycles` derives from the stored milli-wave count (not the raw float)
    // so the two fields can never drift apart.
    let cycles = (wave_cycles * waves_milli + 500) / 1000;
    Ok(KernelTiming {
        cycles,
        wave_cycles,
        waves_milli,
        occupancy: occ,
        issued: out.traces.iter().map(|t| t.entries.len() as u64).sum(),
        dynamic_instructions: out.dynamic_instructions,
        stats,
    })
}

struct TWarp<'a> {
    cta: u32,
    entries: &'a [crate::exec::TraceEntry],
    pos: usize,
    /// Cycle at which each register's pending write completes.
    ready: Vec<u64>,
    waiting_bar: bool,
    last_issue: u64,
}

impl TWarp<'_> {
    fn done(&self) -> bool {
        self.pos >= self.entries.len()
    }
}

/// Replay one wave of traces on the SM model, returning the cycle count.
#[allow(clippy::too_many_lines)]
fn replay_wave(
    kernel: &Kernel,
    traces: &[WarpTrace],
    cfg: &TimingConfig,
) -> Result<(u64, WaveStats), ExecError> {
    let mut stats = WaveStats::default();
    if traces.is_empty() {
        return Ok((0, stats));
    }
    let regs = kernel.register_count().max(1) as usize;
    let mut warps: Vec<TWarp<'_>> = traces
        .iter()
        .map(|t| TWarp {
            cta: t.cta,
            entries: &t.entries,
            pos: 0,
            ready: vec![0; regs],
            waiting_bar: false,
            last_issue: 0,
        })
        .collect();

    let schedulers = cfg.gpu.schedulers as usize;
    let mut fu_free_qc = [0u64; 7];
    let mut mem_pipe_qc = 0u64;
    let mut cycle: u64 = 0;

    // Loop-invariant structure, hoisted out of the cycle loop: warp→CTA
    // membership and each scheduler's warp partition never change, so both
    // are computed once and the cycle loop never allocates.
    let cta_members: Vec<Vec<usize>> = {
        let mut ids: Vec<u32> = warps.iter().map(|w| w.cta).collect();
        ids.dedup();
        ids.iter()
            .map(|&cta| {
                warps
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.cta == cta)
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect()
    };
    // Per-scheduler issue order, kept across cycles. Sorting the persistent
    // list by `(Reverse(last_issue), warp index)` yields exactly what the
    // old per-cycle rebuild (index order, then stable sort by
    // `Reverse(last_issue)`) produced, but on an almost-sorted input the
    // adaptive sort is near-linear.
    let mut orders: Vec<Vec<usize>> = (0..schedulers)
        .map(|s| (0..warps.len()).filter(|i| i % schedulers == s).collect())
        .collect();
    // Warps currently parked at a barrier; lets barrier-free cycles skip
    // the release scan entirely.
    let mut waiting_count: usize = 0;

    let fu_idx = |fu: FuncUnit| match fu {
        FuncUnit::Int => 0,
        FuncUnit::F32 => 1,
        FuncUnit::F64 => 2,
        FuncUnit::Sfu => 3,
        FuncUnit::Mem => 4,
        FuncUnit::Ctrl => 5,
        FuncUnit::Mov => 6,
    };

    loop {
        if warps.iter().all(TWarp::done) {
            break;
        }
        if cycle >= cfg.max_cycles {
            return Err(ExecError::Hang { steps: cycle });
        }

        // Barrier release: per CTA, all unfinished warps waiting.
        if waiting_count > 0 {
            for members in &cta_members {
                let mut alive = 0usize;
                let mut waiting = 0usize;
                for &i in members {
                    if !warps[i].done() {
                        alive += 1;
                        waiting += usize::from(warps[i].waiting_bar);
                    }
                }
                if alive > 0 && alive == waiting {
                    for &i in members {
                        if !warps[i].done() {
                            warps[i].waiting_bar = false;
                            warps[i].pos += 1; // retire the barrier entry
                        }
                    }
                    waiting_count -= waiting;
                }
            }
        }

        let now_qc = cycle * 4;
        let mut issued_any = false;
        let mut next_event = u64::MAX;

        for order in &mut orders {
            // Greedy-then-oldest: most recently issued first, then oldest,
            // ties broken by warp id (the trailing `i` in the sort key).
            order.sort_by_key(|&i| (std::cmp::Reverse(warps[i].last_issue), i));

            let mut issued_this_sched = 0u32;
            for &wi in order.iter() {
                let w = &warps[wi];
                if w.done() || w.waiting_bar {
                    continue;
                }
                let entry = w.entries[w.pos];
                let instr = &kernel.instrs()[entry.kidx as usize];
                let op = &instr.op;

                // Barrier: mark waiting (retired at release).
                if matches!(op, Op::Bar) {
                    warps[wi].waiting_bar = true;
                    waiting_count += 1;
                    issued_any = true;
                    break;
                }

                // Scoreboard: all sources (and the guard-implied reads) ready.
                let mut src_ready = 0u64;
                for r in op.uses() {
                    src_ready = src_ready.max(w.ready[usize::from(r.0)]);
                }
                if src_ready > cycle {
                    next_event = next_event.min(src_ready);
                    stats.scoreboard_rejects += 1;
                    continue;
                }

                // Structural: functional unit issue port.
                let fu = op.func_unit();
                let fi = fu_idx(fu);
                if fu_free_qc[fi] > now_qc {
                    next_event = next_event.min(fu_free_qc[fi].div_ceil(4));
                    stats.fu_rejects += 1;
                    continue;
                }

                // Issue.
                fu_free_qc[fi] = now_qc + fu_interval_qc(fu);
                let mut complete = cycle + u64::from(op.dep_latency());
                if instr.predicted && matches!(op, Op::Mov { .. }) {
                    // End-to-end move propagation (Fig. 4): the swapped
                    // codeword is copied register-file-internally without a
                    // datapath round trip.
                    complete = cycle + 2;
                }
                stats.issued_per_fu[fi] += 1;
                if fu == FuncUnit::Mem {
                    // Bandwidth queueing for global transactions.
                    let txn_cost = u64::from(entry.txns) * cfg.txn_interval_qc;
                    mem_pipe_qc = mem_pipe_qc.max(now_qc) + txn_cost;
                    let queue_cycles = (mem_pipe_qc - now_qc) / 4;
                    stats.peak_mem_queue = stats.peak_mem_queue.max(queue_cycles);
                    let lat = match op {
                        Op::Ld {
                            space: swapcodes_isa::MemSpace::Shared,
                            ..
                        }
                        | Op::St {
                            space: swapcodes_isa::MemSpace::Shared,
                            ..
                        } => u64::from(cfg.shared_latency),
                        _ => {
                            // DRAM bank/row variability: deterministic jitter
                            // of +/-25% around the base latency decorrelates
                            // warp wake-ups (a constant latency makes every
                            // warp convoy in lockstep forever, which no real
                            // memory system does).
                            let base = u64::from(cfg.mem_latency);
                            let h = (wi as u64)
                                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                .wrapping_add((w.pos as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                            let h = (h ^ (h >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB);
                            base * 3 / 4 + (h >> 33) % (base / 2)
                        }
                    };
                    complete = cycle + lat + queue_cycles;
                }
                let w = &mut warps[wi];
                for r in op.defs() {
                    let slot = &mut w.ready[usize::from(r.0)];
                    *slot = (*slot).max(complete);
                }
                w.pos += 1;
                w.last_issue = cycle;
                issued_any = true;
                issued_this_sched += 1;
                if issued_this_sched >= 2 {
                    break; // dual dispatch per scheduler per cycle (Pascal)
                }
            }
        }

        if issued_any {
            cycle += 1;
        } else if next_event != u64::MAX && next_event > cycle {
            stats.idle_cycles += next_event - cycle;
            cycle = next_event;
        } else {
            stats.idle_cycles += 1;
            cycle += 1;
        }
    }
    Ok((cycle, stats))
}

/// The seed-revision replay loop, kept bit-for-bit: allocates the CTA
/// list, barrier membership and scheduler order vectors anew every
/// cycle. `reference_replay_matches_optimized` pins the optimized
/// [`replay_wave`] to this behaviour; `perf_baseline` measures the
/// difference.
#[allow(clippy::too_many_lines)]
fn replay_wave_reference(
    kernel: &Kernel,
    traces: &[WarpTrace],
    cfg: &TimingConfig,
) -> Result<(u64, WaveStats), ExecError> {
    let mut stats = WaveStats::default();
    if traces.is_empty() {
        return Ok((0, stats));
    }
    let regs = kernel.register_count().max(1) as usize;
    let mut warps: Vec<TWarp<'_>> = traces
        .iter()
        .map(|t| TWarp {
            cta: t.cta,
            entries: &t.entries,
            pos: 0,
            ready: vec![0; regs],
            waiting_bar: false,
            last_issue: 0,
        })
        .collect();

    let schedulers = cfg.gpu.schedulers as usize;
    let mut fu_free_qc = [0u64; 7];
    let mut mem_pipe_qc = 0u64;
    let mut cycle: u64 = 0;

    let fu_idx = |fu: FuncUnit| match fu {
        FuncUnit::Int => 0,
        FuncUnit::F32 => 1,
        FuncUnit::F64 => 2,
        FuncUnit::Sfu => 3,
        FuncUnit::Mem => 4,
        FuncUnit::Ctrl => 5,
        FuncUnit::Mov => 6,
    };

    loop {
        if warps.iter().all(TWarp::done) {
            break;
        }
        if cycle >= cfg.max_cycles {
            return Err(ExecError::Hang { steps: cycle });
        }

        // Barrier release: per CTA, all unfinished warps waiting.
        let ctas: Vec<u32> = {
            let mut v: Vec<u32> = warps.iter().map(|w| w.cta).collect();
            v.dedup();
            v
        };
        for cta in ctas {
            let members: Vec<usize> = warps
                .iter()
                .enumerate()
                .filter(|(_, w)| w.cta == cta && !w.done())
                .map(|(i, _)| i)
                .collect();
            if !members.is_empty() && members.iter().all(|&i| warps[i].waiting_bar) {
                for i in members {
                    warps[i].waiting_bar = false;
                    warps[i].pos += 1; // retire the barrier entry
                }
            }
        }

        let now_qc = cycle * 4;
        let mut issued_any = false;
        let mut next_event = u64::MAX;

        for s in 0..schedulers {
            // Greedy-then-oldest: most recently issued first, then oldest.
            let mut order: Vec<usize> = (0..warps.len()).filter(|i| i % schedulers == s).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(warps[i].last_issue));

            let mut issued_this_sched = 0u32;
            for &wi in &order {
                let w = &warps[wi];
                if w.done() || w.waiting_bar {
                    continue;
                }
                let entry = w.entries[w.pos];
                let instr = &kernel.instrs()[entry.kidx as usize];
                let op = &instr.op;

                // Barrier: mark waiting (retired at release).
                if matches!(op, Op::Bar) {
                    warps[wi].waiting_bar = true;
                    issued_any = true;
                    break;
                }

                // Scoreboard: all sources (and the guard-implied reads) ready.
                let mut src_ready = 0u64;
                for r in op.uses() {
                    src_ready = src_ready.max(w.ready[usize::from(r.0)]);
                }
                if src_ready > cycle {
                    next_event = next_event.min(src_ready);
                    stats.scoreboard_rejects += 1;
                    continue;
                }

                // Structural: functional unit issue port.
                let fu = op.func_unit();
                let fi = fu_idx(fu);
                if fu_free_qc[fi] > now_qc {
                    next_event = next_event.min(fu_free_qc[fi].div_ceil(4));
                    stats.fu_rejects += 1;
                    continue;
                }

                // Issue.
                fu_free_qc[fi] = now_qc + fu_interval_qc(fu);
                let mut complete = cycle + u64::from(op.dep_latency());
                if instr.predicted && matches!(op, Op::Mov { .. }) {
                    // End-to-end move propagation (Fig. 4): the swapped
                    // codeword is copied register-file-internally without a
                    // datapath round trip.
                    complete = cycle + 2;
                }
                stats.issued_per_fu[fi] += 1;
                if fu == FuncUnit::Mem {
                    // Bandwidth queueing for global transactions.
                    let txn_cost = u64::from(entry.txns) * cfg.txn_interval_qc;
                    mem_pipe_qc = mem_pipe_qc.max(now_qc) + txn_cost;
                    let queue_cycles = (mem_pipe_qc - now_qc) / 4;
                    stats.peak_mem_queue = stats.peak_mem_queue.max(queue_cycles);
                    let lat = match op {
                        Op::Ld {
                            space: swapcodes_isa::MemSpace::Shared,
                            ..
                        }
                        | Op::St {
                            space: swapcodes_isa::MemSpace::Shared,
                            ..
                        } => u64::from(cfg.shared_latency),
                        _ => {
                            // DRAM bank/row variability: deterministic jitter
                            // of +/-25% around the base latency decorrelates
                            // warp wake-ups (a constant latency makes every
                            // warp convoy in lockstep forever, which no real
                            // memory system does).
                            let base = u64::from(cfg.mem_latency);
                            let h = (wi as u64)
                                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                .wrapping_add((w.pos as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                            let h = (h ^ (h >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB);
                            base * 3 / 4 + (h >> 33) % (base / 2)
                        }
                    };
                    complete = cycle + lat + queue_cycles;
                }
                let w = &mut warps[wi];
                for r in op.defs() {
                    let slot = &mut w.ready[usize::from(r.0)];
                    *slot = (*slot).max(complete);
                }
                w.pos += 1;
                w.last_issue = cycle;
                issued_any = true;
                issued_this_sched += 1;
                if issued_this_sched >= 2 {
                    break; // dual dispatch per scheduler per cycle (Pascal)
                }
            }
        }

        if issued_any {
            cycle += 1;
        } else if next_event != u64::MAX && next_event > cycle {
            stats.idle_cycles += next_event - cycle;
            cycle = next_event;
        } else {
            stats.idle_cycles += 1;
            cycle += 1;
        }
    }
    Ok((cycle, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcodes_isa::{KernelBuilder, Reg, Src};

    fn trivial_kernel(arith: usize) -> Kernel {
        let mut k = KernelBuilder::new("t");
        for i in 0..arith {
            k.push(Op::IAdd {
                d: Reg((i % 8) as u8),
                a: Reg(((i + 1) % 8) as u8),
                b: Src::Imm(1),
            });
        }
        k.push(Op::Exit);
        k.finish()
    }

    #[test]
    fn more_work_takes_more_cycles() {
        let cfg = TimingConfig::default();
        let mut mem = GlobalMemory::new(64);
        let small = simulate_kernel(&trivial_kernel(16), Launch::grid(8, 128), &mut mem, &cfg)
            .expect("timing");
        let big = simulate_kernel(&trivial_kernel(160), Launch::grid(8, 128), &mut mem, &cfg)
            .expect("timing");
        assert!(big.cycles > small.cycles, "{small:?} vs {big:?}");
    }

    #[test]
    fn grid_scales_in_waves() {
        let cfg = TimingConfig::default();
        let mut mem = GlobalMemory::new(64);
        let k = trivial_kernel(32);
        let one = simulate_kernel(&k, Launch::grid(56, 256), &mut mem, &cfg).expect("timing");
        let many = simulate_kernel(&k, Launch::grid(56 * 32, 256), &mut mem, &cfg).expect("timing");
        assert!(many.waves() > one.waves());
        assert!(many.cycles >= one.cycles * 2);
    }

    #[test]
    fn fractional_milli_waves_are_the_canonical_scaling_semantics() {
        let cfg = TimingConfig::default();
        let mut mem = GlobalMemory::new(64);
        let k = trivial_kernel(32);
        // Probe the per-device-wave CTA capacity, then launch half a wave
        // beyond two full waves so the fractional count is ~2.5.
        let probe = simulate_kernel(&k, Launch::grid(1, 256), &mut mem, &cfg).expect("timing");
        let per_wave = probe.occupancy.ctas * cfg.gpu.sms;
        let launch = Launch::grid(2 * per_wave + per_wave / 2, 256);
        let t = simulate_kernel(&k, launch, &mut mem, &cfg).expect("timing");
        let frac = f64::from(launch.ctas) / f64::from(per_wave);
        assert_eq!(
            t.waves_milli,
            (frac * 1000.0).round() as u64,
            "waves_milli stores the fractional count"
        );
        assert_eq!(
            t.cycles,
            (t.wave_cycles * t.waves_milli + 500) / 1000,
            "cycles derive exactly from the stored milli-wave count"
        );
        assert_eq!(t.waves(), frac.ceil() as u64, "whole-wave view is ceiled");
        assert!((t.waves_fractional() - frac).abs() < 1e-3);
        // The documented bracket: strictly more than waves()-1 full waves,
        // at most waves() full waves — and a partial tail wave must not be
        // billed as a full one.
        assert!(t.cycles > t.wave_cycles * (t.waves() - 1));
        assert!(t.cycles < t.wave_cycles * t.waves());
    }

    #[test]
    fn dependent_chain_is_slower_than_independent() {
        let cfg = TimingConfig::default();
        let mut mem = GlobalMemory::new(64);
        // Dependent chain on one register.
        let mut k = KernelBuilder::new("chain");
        for _ in 0..64 {
            k.push(Op::IAdd {
                d: Reg(0),
                a: Reg(0),
                b: Src::Imm(1),
            });
        }
        k.push(Op::Exit);
        let chain =
            simulate_kernel(&k.finish(), Launch::grid(1, 32), &mut mem, &cfg).expect("timing");
        let indep = simulate_kernel(&trivial_kernel(64), Launch::grid(1, 32), &mut mem, &cfg)
            .expect("timing");
        assert!(chain.cycles > indep.cycles, "{chain:?} vs {indep:?}");
    }

    #[test]
    fn recovery_cost_ranks_policies_by_expense() {
        use crate::recovery::RecoveryStats;
        let m = RecoveryCostModel::default();
        let kernel_cycles = 10_000;
        let correct = RecoveryStats {
            checkpoints: 4,
            corrections: 1,
            ..RecoveryStats::default()
        };
        let replay = RecoveryStats {
            checkpoints: 4,
            replays: 1,
            replayed_instructions: 200,
            ..RecoveryStats::default()
        };
        let relaunch = RecoveryStats {
            checkpoints: 4,
            relaunches: 1,
            ..RecoveryStats::default()
        };
        let c = m.overhead_cycles(&correct, kernel_cycles);
        let p = m.overhead_cycles(&replay, kernel_cycles);
        let l = m.overhead_cycles(&relaunch, kernel_cycles);
        assert!(c < p && p < l, "{c} < {p} < {l} expected");
        // A relaunch always pays the kernel again.
        assert!(l > kernel_cycles);
        // No recovery work, no overhead.
        assert_eq!(
            m.overhead_cycles(&RecoveryStats::default(), kernel_cycles),
            0
        );
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use swapcodes_isa::{KernelBuilder, MemSpace, MemWidth, Reg, SpecialReg, Src};

    #[test]
    fn stats_account_for_issued_work() {
        let mut k = KernelBuilder::new("mix");
        k.push(Op::S2R {
            d: Reg(0),
            sr: SpecialReg::TidX,
        });
        for i in 0..6u8 {
            k.push(Op::FAdd {
                d: Reg(1 + i),
                a: Reg(0),
                b: Src::Imm(0x3F80_0000),
            });
        }
        k.push(Op::Shl {
            d: Reg(7),
            a: Reg(0),
            b: Src::Imm(2),
        });
        k.push(Op::Ld {
            d: Reg(8),
            space: MemSpace::Global,
            addr: Reg(7),
            offset: 0,
            width: MemWidth::W32,
        });
        k.push(Op::Exit);
        let kernel = k.finish();
        let cfg = TimingConfig::default();
        let mut mem = GlobalMemory::new(4096);
        let t = simulate_kernel(&kernel, crate::exec::Launch::grid(2, 64), &mut mem, &cfg)
            .expect("timing");
        let total: u64 = t.stats.issued_per_fu.iter().sum();
        assert_eq!(total, t.issued, "per-FU counts must sum to issued");
        assert!(t.stats.issued_per_fu[1] > 0, "F32 work recorded");
        assert!(t.stats.issued_per_fu[4] > 0, "memory work recorded");
        assert!(t.stats.ipc(t.wave_cycles) > 0.0);
        // A load-tailed kernel has idle cycles while the loads return.
        assert!(t.stats.idle_cycles > 0);
    }
}

#[cfg(test)]
mod reference_tests {
    use super::*;
    use swapcodes_isa::{KernelBuilder, MemSpace, MemWidth, Reg, SpecialReg, Src};

    /// The optimized replay (persistent issue order, counted barrier scan,
    /// reused buffers) must be cycle-for-cycle identical to the seed
    /// reference across the model's three stall mechanisms: dependences,
    /// memory latency/bandwidth, and barriers.
    #[test]
    fn reference_replay_matches_optimized() {
        let cfg = TimingConfig::default();

        // ILP mix with loads (memory path).
        let mut k = KernelBuilder::new("mix");
        k.push(Op::S2R {
            d: Reg(0),
            sr: SpecialReg::TidX,
        });
        for i in 0..6u8 {
            k.push(Op::FAdd {
                d: Reg(1 + i),
                a: Reg(0),
                b: Src::Imm(0x3F80_0000),
            });
        }
        k.push(Op::Shl {
            d: Reg(7),
            a: Reg(0),
            b: Src::Imm(2),
        });
        k.push(Op::Ld {
            d: Reg(8),
            space: MemSpace::Global,
            addr: Reg(7),
            offset: 0,
            width: MemWidth::W32,
        });
        k.push(Op::Exit);
        let mix = k.finish();

        // Barrier kernel (release/retire path).
        let mut k = KernelBuilder::new("bar");
        k.push(Op::S2R {
            d: Reg(0),
            sr: SpecialReg::TidX,
        });
        k.push(Op::IAdd {
            d: Reg(1),
            a: Reg(0),
            b: Src::Imm(3),
        });
        k.push(Op::Bar);
        k.push(Op::IAdd {
            d: Reg(2),
            a: Reg(1),
            b: Src::Imm(5),
        });
        k.push(Op::Bar);
        k.push(Op::IAdd {
            d: Reg(3),
            a: Reg(2),
            b: Src::Imm(7),
        });
        k.push(Op::Exit);
        let barriers = k.finish();

        for (kernel, launch) in [
            (&mix, Launch::grid(4, 128)),
            (&barriers, Launch::grid(3, 96)),
        ] {
            let mut mem = GlobalMemory::new(4096);
            let fast = simulate_kernel(kernel, launch, &mut mem, &cfg).expect("timing");
            let mut mem = GlobalMemory::new(4096);
            let reference =
                simulate_kernel_reference(kernel, launch, &mut mem, &cfg).expect("timing");
            assert_eq!(fast, reference, "kernel {}", kernel.name());
        }
    }
}

#[cfg(test)]
mod golden_tests {
    use super::*;
    use swapcodes_isa::{KernelBuilder, Reg, Src};

    /// Golden cycle counts for two small kernels. These pin the replay
    /// model's exact behaviour so hot-loop refactors (buffer reuse, sort
    /// strategy) cannot silently change scheduling decisions.
    #[test]
    fn golden_cycle_counts_are_stable() {
        let cfg = TimingConfig::default();
        let mut mem = GlobalMemory::new(64);

        // Independent adds across 8 registers: ILP-rich, issue-limited.
        let mut k = KernelBuilder::new("indep");
        for i in 0..24usize {
            k.push(Op::IAdd {
                d: Reg((i % 8) as u8),
                a: Reg(((i + 1) % 8) as u8),
                b: Src::Imm(1),
            });
        }
        k.push(Op::Exit);
        let indep =
            simulate_kernel(&k.finish(), Launch::grid(8, 128), &mut mem, &cfg).expect("timing");
        assert_eq!(
            (
                indep.cycles,
                indep.issued,
                indep.dynamic_instructions,
                indep.waves()
            ),
            (769, 800, 800, 1),
            "indep kernel timing drifted: {indep:?}"
        );

        // Single-register dependent chain: latency-limited.
        let mut k = KernelBuilder::new("chain");
        for _ in 0..32 {
            k.push(Op::IAdd {
                d: Reg(0),
                a: Reg(0),
                b: Src::Imm(1),
            });
        }
        k.push(Op::Exit);
        let chain =
            simulate_kernel(&k.finish(), Launch::grid(4, 64), &mut mem, &cfg).expect("timing");
        assert_eq!(
            (
                chain.cycles,
                chain.issued,
                chain.dynamic_instructions,
                chain.waves()
            ),
            (381, 264, 264, 1),
            "chain kernel timing drifted: {chain:?}"
        );
    }
}
