//! SM occupancy: how many CTAs/warps fit given register, thread, CTA and
//! shared-memory limits. Register pressure is the lever duplication pulls —
//! doubling per-thread registers can halve the resident warps and with them
//! the SM's latency-hiding ability.

use serde::{Deserialize, Serialize};

/// GPU hardware limits (defaults approximate a Tesla P100 SM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Streaming multiprocessors on the device.
    pub sms: u32,
    /// Maximum resident warps per SM.
    pub max_warps: u32,
    /// Maximum resident threads per SM.
    pub max_threads: u32,
    /// Maximum resident CTAs per SM.
    pub max_ctas: u32,
    /// 32-bit registers per SM.
    pub regfile_regs: u32,
    /// Shared memory words per SM.
    pub shared_words: u32,
    /// Warp schedulers per SM.
    pub schedulers: u32,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            sms: 56,
            max_warps: 64,
            max_threads: 2048,
            max_ctas: 32,
            regfile_regs: 65_536,
            shared_words: 16_384, // 64 KiB
            schedulers: 4,
        }
    }
}

/// What capped the occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Limiter {
    Warps,
    Threads,
    Ctas,
    Registers,
    SharedMemory,
    GridSize,
}

/// Resident-work summary for one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident CTAs per SM.
    pub ctas: u32,
    /// Resident warps per SM.
    pub warps: u32,
    /// The binding resource.
    pub limiter: Limiter,
}

/// Compute the occupancy of a kernel with `regs_per_thread` registers,
/// `threads_per_cta` threads and `shared_words_per_cta` words of shared
/// memory per CTA.
///
/// Register allocation is modelled with warp-granularity rounding (256
/// registers per warp allocation unit), like real hardware.
///
/// # Panics
///
/// Panics if `threads_per_cta` is zero.
#[must_use]
pub fn occupancy(
    cfg: &GpuConfig,
    regs_per_thread: u32,
    threads_per_cta: u32,
    shared_words_per_cta: u32,
) -> Occupancy {
    assert!(threads_per_cta > 0, "empty CTA");
    let warps_per_cta = threads_per_cta.div_ceil(32);
    let regs_per_warp = (regs_per_thread.max(1) * 32).div_ceil(256) * 256;
    let regs_per_cta = regs_per_warp * warps_per_cta;

    let mut candidates = vec![
        (cfg.max_warps / warps_per_cta, Limiter::Warps),
        (cfg.max_threads / threads_per_cta, Limiter::Threads),
        (cfg.max_ctas, Limiter::Ctas),
        (cfg.regfile_regs / regs_per_cta, Limiter::Registers),
    ];
    if let Some(shared_limit) = cfg.shared_words.checked_div(shared_words_per_cta) {
        candidates.push((shared_limit, Limiter::SharedMemory));
    }
    let (ctas, limiter) = candidates
        .into_iter()
        .min_by_key(|&(n, _)| n)
        .expect("non-empty candidate list");
    Occupancy {
        ctas,
        warps: ctas * warps_per_cta,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_kernels_hit_the_warp_limit() {
        let cfg = GpuConfig::default();
        let occ = occupancy(&cfg, 16, 256, 0);
        assert_eq!(occ.warps, 64);
        assert!(matches!(occ.limiter, Limiter::Warps | Limiter::Threads));
    }

    #[test]
    fn register_pressure_cuts_occupancy() {
        let cfg = GpuConfig::default();
        let lean = occupancy(&cfg, 32, 256, 0);
        let fat = occupancy(&cfg, 64, 256, 0);
        assert!(fat.warps < lean.warps, "{lean:?} vs {fat:?}");
        assert_eq!(fat.limiter, Limiter::Registers);
        // Doubling registers should roughly halve warps once reg-bound.
        assert!(fat.warps <= lean.warps / 2 + 8);
    }

    #[test]
    fn shared_memory_limits() {
        let cfg = GpuConfig::default();
        let occ = occupancy(&cfg, 16, 256, 8_192);
        assert_eq!(occ.ctas, 2);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn allocation_granularity_rounds_up() {
        let cfg = GpuConfig::default();
        // 33 regs/thread -> 1056 regs/warp -> rounds to 1280; but the CTA
        // count is still capped by the 32-CTA limit for single-warp CTAs.
        let occ = occupancy(&cfg, 33, 32, 0);
        let reg_bound = cfg.regfile_regs / 1280;
        assert_eq!(occ.ctas, reg_bound.min(cfg.max_ctas));
    }
}
