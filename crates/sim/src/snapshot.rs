//! Epoch snapshots and the fast-forward campaign engine.
//!
//! An architecture-level injection campaign runs the *same* kernel once per
//! trial, differing only in where a single fault strikes. All work before
//! the strike is identical across trials, and most post-strike suffixes are
//! identical to the golden run (the fault was masked). The fast-forward
//! engine exploits both:
//!
//! * **Epoch ladder** — during the campaign's golden run it captures full
//!   architectural snapshots (warp register files with their ECC state,
//!   divergence fragments, predicates, barrier flags, shared and global
//!   memory, and the per-side eligible-op counters) every N dynamic
//!   instructions. A trial resumes from the latest snapshot whose
//!   eligible-op counter has not yet passed the trial's injection site and
//!   executes only the suffix.
//! * **Golden-convergence early-exit** — once the strike has been delivered,
//!   if the trial's complete architectural state becomes byte-identical to
//!   the golden state at the same dynamic-instruction count with no
//!   detection pending, the remaining execution is a deterministic replay of
//!   the golden suffix: no further fault can fire (the single strike is
//!   spent) and the executor state machine is a pure function of
//!   architectural state. The trial is therefore classified Masked without
//!   running to completion. See DESIGN §9 for the soundness argument and
//!   the fuel/truncation guards.
//!
//! Trials interpret the predecoded micro-op table from [`crate::predecode`]
//! instead of re-matching the `Op` enum per step. The engine supports
//! exactly the configuration injection campaigns use — a single CTA
//! (`cta_limit = 1`), no trace or operand capture, no in-executor recovery,
//! fueled — and is differentially tested against the reference executor
//! ([`crate::exec`]) outcome-for-outcome.
//!
//! Under [`ExecTier::Tier2`] the engine executes the kernel through a
//! threaded-code buffer of compiled dispatch closures ([`crate::tier2`])
//! instead of the central micro-op match; the scheduler, snapshot capture
//! and convergence early-exit are shared between the tiers, and the tier-1
//! interpreter stays as the differential reference.

use std::sync::Arc;

use crate::exec::{compare, CancelToken, Detection, ExecConfig, ExecError, Launch};
use crate::fault::{ControlTarget, FaultClass, FaultSpec, FaultTarget};
use crate::memory::{CowMemory, CowShared, GlobalMemory};
use crate::predecode::{
    Alu1Kind, Alu2Kind, Guard, MicroOp, PShflMode, PSrc, PredecodedKernel, UOp, WriteMode,
};
use crate::regfile::{CowRegFile, Protection, RegFileEvent, WarpRegFile};
use crate::tier2::{CompiledKernel, ExecTier};
use swapcodes_isa::{Kernel, MemSpace, SpecialReg};

/// One PC-reconvergence fragment of a warp: a program counter and the lanes
/// currently at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Static instruction index the fragment executes next.
    pub pc: usize,
    /// Lanes at this PC.
    pub mask: u32,
}

/// Architectural snapshot of one warp, sufficient to resume it: PC
/// fragments, predicate registers, and the full (ECC-encoded) register
/// file. Shared by the recovery engine's warp checkpoints
/// ([`crate::exec`]) and the campaign epoch ladder.
#[derive(Debug, Clone)]
pub struct WarpSnapshot {
    /// Divergence fragments.
    pub frags: Vec<Fragment>,
    /// Predicate registers of all 32 lanes.
    pub preds: [u8; 32],
    /// The full register file, including stored check bits and the decoder
    /// arming flag.
    pub rf: WarpRegFile,
}

/// One warp of an epoch snapshot: resume state plus the golden run's
/// touched-register bitmap for the interval *ending* at this rung (the
/// per-epoch register delta the dirty-only convergence comparison
/// accumulates, DESIGN §14).
#[derive(Debug, Clone)]
struct EpochWarp {
    frags: Vec<Fragment>,
    preds: [u8; 32],
    /// Shared base file: trials wrap it in a [`CowRegFile`] and only clone
    /// on first write. Captured with a drained touched bitmap, so a resumed
    /// trial's dirty tracking starts empty.
    rf: Arc<WarpRegFile>,
    /// Registers the golden run wrote in `(previous rung, this rung]`.
    delta_regs: Vec<u64>,
}

/// One rung of the epoch ladder: the complete architectural state of the
/// golden run at a dynamic-instruction boundary (taken at the top of a
/// scheduler round, so resuming restarts the round scheduler cleanly).
/// Bulk state (global memory, shared memory, register files) is held in
/// `Arc`s so resuming a trial shares it copy-on-write instead of deep
/// cloning, and each rung records the golden run's dirty set for the
/// interval ending at it.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// Dynamic warp-instructions executed when the snapshot was taken.
    pub dyn_count: u64,
    /// Original-side eligible instructions executed so far.
    pub eligible_orig: u64,
    /// Shadow-side eligible instructions executed so far.
    pub eligible_shadow: u64,
    warps: Vec<EpochWarp>,
    bars: Vec<bool>,
    shared: Arc<Vec<u32>>,
    /// Whether the golden run wrote shared memory in `(previous, this]`.
    delta_shared: bool,
    mem: Arc<Vec<u32>>,
    /// Global-memory pages the golden run wrote in `(previous, this]`.
    delta_pages: Vec<u64>,
}

impl EpochSnapshot {
    /// The eligible-op counter for one fault side at the snapshot point.
    #[must_use]
    pub fn eligible_for(&self, target: FaultTarget) -> u64 {
        match target {
            FaultTarget::Original => self.eligible_orig,
            FaultTarget::Shadow => self.eligible_shadow,
        }
    }
}

/// The golden run's snapshot ladder plus the run-level facts the
/// convergence early-exit needs to be sound.
#[derive(Debug, Clone)]
pub struct EpochLadder {
    /// Requested capture spacing in dynamic instructions.
    pub interval: u64,
    /// Total dynamic instructions of the golden run.
    pub golden_dynamic: u64,
    /// Whether the golden run hit the `max_dynamic` cap (early-exit is
    /// disabled in that case: the golden suffix is not a completed run).
    pub golden_truncated: bool,
    snapshots: Vec<EpochSnapshot>,
}

/// Facts about the golden capture run, for validation against the
/// reference executor's golden run.
#[derive(Debug)]
pub struct GoldenCapture {
    /// Detection state of the golden run (must be `None` for a usable
    /// campaign).
    pub detection: Detection,
    /// Dynamic warp-instructions executed.
    pub dynamic_instructions: u64,
    /// Whether `max_dynamic` truncated the run.
    pub truncated: bool,
    /// Original-side eligible instructions executed.
    pub eligible_orig: u64,
    /// Shadow-side eligible instructions executed.
    pub eligible_shadow: u64,
    /// Final global memory (for output validation against the reference
    /// golden run).
    pub mem: GlobalMemory,
}

/// How a trial materializes the epoch snapshot it resumes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumeMode {
    /// Deep-copy the full snapshot upfront and compare complete machine
    /// state at convergence checks — the legacy O(total state) path, kept
    /// as the differential anchor for the copy-on-write path.
    Clone,
    /// Share the snapshot through `Arc`s and materialize only what the
    /// trial writes; convergence checks compare only the dirty superset
    /// (trial writes ∪ accumulated golden deltas) against golden state.
    #[default]
    Cow,
}

/// Result of one fast-forwarded trial.
#[derive(Debug)]
pub struct FastTrial {
    /// Detection state when the trial halted (or ran to completion).
    pub detection: Detection,
    /// Structured host error, if any (fuel exhaustion, scheduler deadlock).
    pub error: Option<ExecError>,
    /// The trial's architectural state re-converged to the golden epoch
    /// state after the strike: the outcome is provably Masked and `mem` is
    /// *not* the final memory (the suffix was pruned).
    pub converged_early: bool,
    /// Global memory at the point the trial stopped (a CoW view over the
    /// resume snapshot; use [`CowMemory::read_u32_slice`] for O(output)
    /// region reads or [`CowMemory::words`]/[`CowMemory::to_global`] to
    /// flatten).
    pub mem: CowMemory,
    /// Dynamic-instruction count of the snapshot the trial resumed from.
    pub resumed_from: u64,
    /// Dynamic instructions actually executed by this trial.
    pub executed: u64,
    /// Bytes of snapshot state this trial materialized (global-memory
    /// pages, shared memory if written, register files if written).
    pub bytes_cloned: u64,
    /// Global-memory pages materialized by writes.
    pub cow_pages_cloned: u64,
    /// Total global-memory pages in the snapshot (the CoW denominator).
    pub cow_pages_total: u64,
}

/// The fast-forward campaign engine: a predecoded kernel plus the golden
/// epoch ladder, built once per campaign in `ArchCampaign::prepare`.
#[derive(Debug)]
pub struct CampaignEngine {
    pk: PredecodedKernel,
    launch: Launch,
    ladder: EpochLadder,
    max_dynamic: u64,
    tier: ExecTier,
    compiled: Option<CompiledKernel>,
    page_words: usize,
}

impl CampaignEngine {
    /// Run the fault-free golden execution of `kernel` over the first CTA of
    /// `launch`, capturing an epoch snapshot every `interval` dynamic
    /// instructions (including epoch 0 at the initial state, so trials never
    /// rebuild workload memory). Executes on [`ExecTier::Tier1`]; use
    /// [`Self::capture_config`] to select the tier through an [`ExecConfig`].
    ///
    /// # Errors
    ///
    /// Propagates the golden run's structured failure (out-of-bounds access
    /// or scheduler deadlock), exactly like the reference executor's golden
    /// run would.
    pub fn capture(
        kernel: &Kernel,
        launch: Launch,
        protection: Protection,
        initial_mem: &GlobalMemory,
        interval: u64,
    ) -> Result<(Self, GoldenCapture), ExecError> {
        Self::capture_config(
            kernel,
            launch,
            protection,
            initial_mem,
            interval,
            &ExecConfig::default(),
        )
    }

    /// [`Self::capture`] honoring `config.tier` and `config.max_dynamic`:
    /// under [`ExecTier::Tier2`] the kernel is compiled into the threaded-code
    /// closure buffer once, and both the golden capture run and every trial
    /// execute through it.
    ///
    /// # Errors
    ///
    /// Propagates the golden run's structured failure, exactly like
    /// [`Self::capture`].
    pub fn capture_config(
        kernel: &Kernel,
        launch: Launch,
        protection: Protection,
        initial_mem: &GlobalMemory,
        interval: u64,
        config: &ExecConfig,
    ) -> Result<(Self, GoldenCapture), ExecError> {
        let pk = PredecodedKernel::new(kernel);
        let max_dynamic = config.max_dynamic;
        let page_words = config.cow_page_words.max(1).next_power_of_two();
        let compiled = match config.tier {
            ExecTier::Tier1 => None,
            ExecTier::Tier2 => Some(CompiledKernel::compile(&pk)),
        };
        let mut ctx = FastCtx {
            pk: &pk,
            launch,
            fault: None,
            fuel: None,
            max_dynamic,
            mem: CowMemory::new(Arc::new(initial_mem.words().to_vec()), page_words),
            shared: CowShared::new_zeroed(launch.shared_words as usize),
            dyn_count: 0,
            eligible_orig: 0,
            eligible_shadow: 0,
            detection: Detection::None,
            pending_due: None,
            truncated: false,
            error: None,
            faults_applied: 0,
            control_delivered: false,
            cancel: None,
        };
        let mut warps = new_warps(&pk, launch, protection);
        if compiled.is_some() {
            // Tier 2 defers check-bit encoding on full writes; the hooks
            // flush before every observation point (see `WarpRegFile`).
            for w in &mut warps {
                w.rf.set_deferred(true);
            }
        }
        let mut snapshots = Vec::new();
        let mut hook = Hook::Capture {
            interval: interval.max(1),
            next: 0,
            out: &mut snapshots,
        };
        run_rounds(&mut ctx, &mut warps, &mut hook, compiled.as_ref());
        if let Some(e) = ctx.error {
            return Err(e);
        }
        let capture = GoldenCapture {
            detection: ctx.detection,
            dynamic_instructions: ctx.dyn_count,
            truncated: ctx.truncated,
            eligible_orig: ctx.eligible_orig,
            eligible_shadow: ctx.eligible_shadow,
            mem: ctx.mem.to_global(),
        };
        let ladder = EpochLadder {
            interval: interval.max(1),
            golden_dynamic: capture.dynamic_instructions,
            golden_truncated: capture.truncated,
            snapshots,
        };
        Ok((
            Self {
                pk,
                launch,
                ladder,
                max_dynamic,
                tier: config.tier,
                compiled,
                page_words,
            },
            capture,
        ))
    }

    /// Copy-on-write page size (in 32-bit words) trials resume with.
    #[must_use]
    pub fn page_words(&self) -> usize {
        self.page_words
    }

    /// Number of epoch snapshots in the ladder.
    #[must_use]
    pub fn snapshot_count(&self) -> usize {
        self.ladder.snapshots.len()
    }

    /// The execution tier this engine runs trials on.
    #[must_use]
    pub fn tier(&self) -> ExecTier {
        self.tier
    }

    /// Number of adjacent micro-op pairs the tier-2 compiler fused into
    /// superinstruction closures (0 on tier 1).
    #[must_use]
    pub fn fused_pairs(&self) -> usize {
        self.compiled
            .as_ref()
            .map_or(0, CompiledKernel::fused_pairs)
    }

    /// Requested snapshot spacing in dynamic instructions.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.ladder.interval
    }

    /// Total dynamic instructions of the golden run.
    #[must_use]
    pub fn golden_dynamic(&self) -> u64 {
        self.ladder.golden_dynamic
    }

    /// Run one fueled trial, resuming from the nearest epoch snapshot at or
    /// before the injection site and pruning the suffix when post-strike
    /// state re-converges to golden.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty (capture always records epoch 0, so
    /// this indicates engine misuse).
    #[must_use]
    pub fn run_trial(&self, fault: FaultSpec, fuel: u64) -> FastTrial {
        self.run_trial_cancellable(fault, fuel, None)
    }

    /// [`Self::run_trial`] with an optional cancellation token, polled at
    /// every issue boundary. A cancelled trial returns with
    /// [`ExecError::Cancelled`]; its partial state must be discarded, never
    /// tallied — the trial re-runs in full on resume, preserving
    /// byte-identity.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty, exactly like [`Self::run_trial`].
    #[must_use]
    pub fn run_trial_cancellable(
        &self,
        fault: FaultSpec,
        fuel: u64,
        cancel: Option<&CancelToken>,
    ) -> FastTrial {
        self.run_trial_mode(fault, fuel, cancel, ResumeMode::Cow)
    }

    /// Index of the ladder rung `fault`'s trial resumes from: the latest
    /// rung whose captured golden prefix is provably fault-free. For
    /// datapath classes that is "no matching-side eligible access has
    /// reached the strike / activation index yet"; for control strikes it is
    /// "the delivery instruction has not issued yet".
    #[must_use]
    pub fn resume_rung(&self, fault: &FaultSpec) -> usize {
        let mut si = 0;
        for (i, s) in self.ladder.snapshots.iter().enumerate() {
            let before_strike = if fault.is_control() {
                s.dyn_count <= fault.eligible_index
            } else {
                s.eligible_for(fault.target) <= fault.eligible_index
            };
            if before_strike {
                si = i;
            } else {
                break;
            }
        }
        si
    }

    /// [`Self::run_trial_cancellable`] with an explicit [`ResumeMode`]:
    /// `Cow` (the default everywhere else) shares the resume snapshot and
    /// compares dirty state only; `Clone` deep-copies it upfront and
    /// compares complete machine state — the legacy cost model, kept as the
    /// byte-identity anchor the CoW path is differentially tested against.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty, exactly like [`Self::run_trial`].
    #[must_use]
    pub fn run_trial_mode(
        &self,
        fault: FaultSpec,
        fuel: u64,
        cancel: Option<&CancelToken>,
        mode: ResumeMode,
    ) -> FastTrial {
        let si = self.resume_rung(&fault);
        let snap = &self.ladder.snapshots[si];
        let mut ctx = FastCtx {
            pk: &self.pk,
            launch: self.launch,
            fault: Some(fault),
            fuel: Some(fuel),
            max_dynamic: self.max_dynamic,
            mem: CowMemory::new(Arc::clone(&snap.mem), self.page_words),
            shared: CowShared::resume(Arc::clone(&snap.shared)),
            dyn_count: snap.dyn_count,
            eligible_orig: snap.eligible_orig,
            eligible_shadow: snap.eligible_shadow,
            detection: Detection::None,
            pending_due: None,
            truncated: false,
            error: None,
            faults_applied: 0,
            control_delivered: false,
            cancel: cancel.cloned(),
        };
        let defer = self.compiled.is_some();
        let mut warps: Vec<FastWarp> = snap
            .warps
            .iter()
            .zip(&snap.bars)
            .enumerate()
            .map(|(wid, (ws, &bar))| FastWarp {
                wid: wid as u32,
                frags: ws.frags.clone(),
                preds: ws.preds,
                rf: CowRegFile::shared(Arc::clone(&ws.rf), defer),
                waiting_bar: bar,
            })
            .collect();
        if mode == ResumeMode::Clone {
            ctx.mem.materialize_all();
            ctx.shared.materialize();
            for w in &mut warps {
                // Materialization re-arms tier-2 deferred encoding, exactly
                // like the legacy clone-then-set_deferred sequence.
                w.rf.materialize();
            }
        }
        // Early-exit is only sound when the golden suffix itself completes
        // within this trial's fuel and dynamic caps: otherwise the
        // from-scratch trial would have hung or truncated, not Masked.
        let fuel_ok = !self.ladder.golden_truncated
            && self.ladder.golden_dynamic <= fuel
            && self.ladder.golden_dynamic < self.max_dynamic;
        let mut converged = false;
        let mut hook = Hook::Converge {
            ladder: &self.ladder,
            idx: si,
            fault,
            fuel_ok,
            acc: DeltaAcc::sized_like(snap),
            full: mode == ResumeMode::Clone,
            converged: &mut converged,
        };
        run_rounds(&mut ctx, &mut warps, &mut hook, self.compiled.as_ref());
        let regfile_bytes: u64 = warps
            .iter()
            .filter(|w| w.rf.is_materialized())
            .map(|w| u64::from(w.rf.regs()) * 32 * 8)
            .sum();
        let shared_bytes = if ctx.shared.is_materialized() {
            snap.shared.len() as u64 * 4
        } else {
            0
        };
        let bytes_cloned =
            ctx.mem.pages_cloned() * self.page_words as u64 * 4 + shared_bytes + regfile_bytes;
        FastTrial {
            detection: ctx.detection,
            error: ctx.error,
            converged_early: converged,
            executed: ctx.dyn_count - snap.dyn_count,
            resumed_from: snap.dyn_count,
            bytes_cloned,
            cow_pages_cloned: ctx.mem.pages_cloned(),
            cow_pages_total: ctx.mem.page_count() as u64,
            mem: ctx.mem,
        }
    }
}

/// Mutable per-warp execution state (the trace/recovery-free subset of the
/// reference executor's warp). `pub(crate)` so the tier-2 closure compiler
/// ([`crate::tier2`]) can execute against the same state the interpreter
/// uses.
pub(crate) struct FastWarp {
    pub(crate) wid: u32,
    pub(crate) frags: Vec<Fragment>,
    pub(crate) rf: CowRegFile,
    pub(crate) preds: [u8; 32],
    pub(crate) waiting_bar: bool,
}

impl FastWarp {
    fn done(&self) -> bool {
        self.frags.is_empty()
    }
}

/// Run-global execution state (everything the scheduler and every step
/// touches, other than the warps themselves).
pub(crate) struct FastCtx<'a> {
    pub(crate) pk: &'a PredecodedKernel,
    pub(crate) launch: Launch,
    pub(crate) fault: Option<FaultSpec>,
    pub(crate) fuel: Option<u64>,
    pub(crate) max_dynamic: u64,
    pub(crate) mem: CowMemory,
    pub(crate) shared: CowShared,
    pub(crate) dyn_count: u64,
    pub(crate) eligible_orig: u64,
    pub(crate) eligible_shadow: u64,
    pub(crate) detection: Detection,
    pub(crate) pending_due: Option<bool>,
    pub(crate) truncated: bool,
    pub(crate) error: Option<ExecError>,
    pub(crate) faults_applied: u32,
    /// A control-state strike has been delivered (one-shot, keyed on the
    /// global dynamic-instruction counter rather than the eligible ones).
    pub(crate) control_delivered: bool,
    /// Armed cancellation token, polled at every issue (see
    /// [`crate::exec::CancelToken`]).
    pub(crate) cancel: Option<CancelToken>,
}

impl FastCtx<'_> {
    pub(crate) fn halted(&self) -> bool {
        self.detection != Detection::None || self.truncated || self.error.is_some()
    }

    pub(crate) fn eligible_for(&self, target: FaultTarget) -> u64 {
        match target {
            FaultTarget::Original => self.eligible_orig,
            FaultTarget::Shadow => self.eligible_shadow,
        }
    }

    /// Is the armed fault provably unable to fire from this point on?
    /// Transients are spent once the matching-side eligible counter passed
    /// the strike index; a control strike is spent once delivered; a
    /// stuck-at defect is never spent (it re-asserts forever), which
    /// disables golden-convergence early-exit for that class.
    pub(crate) fn strike_spent(&self, f: &FaultSpec) -> bool {
        match f.class {
            FaultClass::Transient => self.eligible_for(f.target) > f.eligible_index,
            FaultClass::Control(_) => self.control_delivered,
            FaultClass::StuckAt(_) => false,
        }
    }

    /// Will an undelivered control strike land within the next `n` issued
    /// instructions? Tier-2 bulk walks and fused closures must drop to the
    /// exact interpreter path across the delivery point.
    pub(crate) fn control_pending_within(&self, n: u64) -> bool {
        match self.fault {
            Some(f) if f.is_control() && !self.control_delivered => {
                f.eligible_index < self.dyn_count + n
            }
            _ => false,
        }
    }

    fn mem_fault(&mut self, addr: u32) {
        if self.fault.is_some() {
            if self.detection == Detection::None {
                self.detection = Detection::MemFault { at: self.dyn_count };
            }
        } else if self.error.is_none() {
            self.error = Some(ExecError::OutOfBoundsAccess {
                addr,
                at: self.dyn_count,
            });
        }
    }
}

/// The union of golden per-epoch dirty sets accumulated between the resume
/// rung and the convergence candidate rung. Together with the trial's own
/// dirty tracking (materialized CoW pages, touched registers, shared-memory
/// materialization) it is a provable superset of every location where trial
/// and golden state can differ: anything outside both sets still holds the
/// resume snapshot's bytes in *both* machines (DESIGN §14).
struct DeltaAcc {
    /// OR of golden `delta_pages` over rungs in `(resume, candidate]`.
    pages: Vec<u64>,
    /// Per-warp OR of golden `delta_regs` over the same rungs.
    regs: Vec<Vec<u64>>,
    /// Whether any of those rungs saw a golden shared-memory write.
    shared: bool,
}

impl DeltaAcc {
    fn sized_like(s: &EpochSnapshot) -> Self {
        Self {
            pages: vec![0; s.delta_pages.len()],
            regs: s
                .warps
                .iter()
                .map(|w| vec![0; w.delta_regs.len()])
                .collect(),
            shared: false,
        }
    }

    /// Absorb the per-epoch golden deltas of rung `s` (called once each time
    /// the candidate index advances onto `s`).
    fn absorb(&mut self, s: &EpochSnapshot) {
        for (d, &x) in self.pages.iter_mut().zip(&s.delta_pages) {
            *d |= x;
        }
        for (dr, w) in self.regs.iter_mut().zip(&s.warps) {
            for (d, &x) in dr.iter_mut().zip(&w.delta_regs) {
                *d |= x;
            }
        }
        self.shared |= s.delta_shared;
    }
}

/// What the scheduler does at the top of every round.
enum Hook<'l> {
    /// Golden run: capture an epoch snapshot whenever `next` is reached.
    Capture {
        interval: u64,
        next: u64,
        out: &'l mut Vec<EpochSnapshot>,
    },
    /// Trial run: test for golden convergence at matching epoch boundaries.
    Converge {
        ladder: &'l EpochLadder,
        idx: usize,
        fault: FaultSpec,
        fuel_ok: bool,
        /// Golden dirty sets accumulated since the resume rung.
        acc: DeltaAcc,
        /// Compare complete machine state ([`ResumeMode::Clone`]) instead of
        /// the dirty superset.
        full: bool,
        converged: &'l mut bool,
    },
}

/// Capture one epoch rung. Rebases the CoW overlays (flattening writes into
/// fresh shared bases) and drains the per-warp touched bitmaps, so each rung
/// records both the resume state and the golden dirty set of the interval
/// ending at it — and so trials resuming from the captured `Arc`s start with
/// clean dirty tracking.
fn capture_epoch(ctx: &mut FastCtx<'_>, warps: &mut [FastWarp]) -> EpochSnapshot {
    let (mem, delta_pages) = ctx.mem.rebase();
    let (shared, delta_shared) = ctx.shared.rebase();
    EpochSnapshot {
        dyn_count: ctx.dyn_count,
        eligible_orig: ctx.eligible_orig,
        eligible_shadow: ctx.eligible_shadow,
        warps: warps
            .iter_mut()
            .map(|w| {
                // Drain *before* cloning: the captured base must carry an
                // empty touched bitmap so resumed trials track only their
                // own writes.
                let delta_regs = w.rf.take_touched();
                EpochWarp {
                    frags: w.frags.clone(),
                    preds: w.preds,
                    rf: Arc::new((*w.rf).clone()),
                    delta_regs,
                }
            })
            .collect(),
        bars: warps.iter().map(|w| w.waiting_bar).collect(),
        shared,
        delta_shared,
        mem,
        delta_pages,
    }
}

/// Whether the trial's architectural state is byte-identical to the golden
/// epoch snapshot. Register files compare stored words only (`stored_eq`):
/// the decoder arming flag is a performance hint with no architectural
/// effect once every stored word is a consistent codeword — which byte
/// equality with the (fault-free) golden state guarantees.
///
/// With `full` unset, bulk state is compared over the dirty superset only:
/// the trial's materialized pages / touched registers / materialized shared
/// memory, unioned with the golden deltas accumulated in `acc`. Locations
/// outside both sets hold the resume snapshot's bytes in both machines, so
/// skipping them cannot mask a difference (DESIGN §14). Control state
/// (fragments, predicates, barrier flags) is tiny and always compared in
/// full.
fn state_matches(
    s: &EpochSnapshot,
    ctx: &FastCtx<'_>,
    warps: &[FastWarp],
    acc: &DeltaAcc,
    full: bool,
) -> bool {
    if warps.len() != s.warps.len() {
        return false;
    }
    for ((w, ws), &bar) in warps.iter().zip(&s.warps).zip(&s.bars) {
        if w.waiting_bar != bar || w.preds != ws.preds || w.frags != ws.frags {
            return false;
        }
    }
    for ((w, ws), acc_regs) in warps.iter().zip(&s.warps).zip(&acc.regs) {
        if full {
            if !w.rf.stored_eq(&ws.rf) {
                return false;
            }
            continue;
        }
        // An unmaterialized file has an all-zero touched bitmap (drained at
        // capture), so only the golden deltas are walked for it.
        let touched = w.rf.touched_bits();
        for (word, &acc_bits) in acc_regs.iter().enumerate() {
            let mut bits = acc_bits | touched.get(word).copied().unwrap_or(0);
            while bits != 0 {
                let reg = (word * 64) as u32 + bits.trailing_zeros();
                bits &= bits - 1;
                if !w.rf.stored_eq_reg(&ws.rf, reg as u8) {
                    return false;
                }
            }
        }
    }
    if (full || acc.shared || ctx.shared.is_materialized())
        && ctx.shared.words() != s.shared.as_slice()
    {
        return false;
    }
    if full {
        return ctx.mem.words() == s.mem.as_slice();
    }
    let resident = ctx.mem.resident_bits();
    for (word, &acc_bits) in acc.pages.iter().enumerate() {
        let mut bits = acc_bits | resident.get(word).copied().unwrap_or(0);
        while bits != 0 {
            let p = word * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if !ctx.mem.page_eq(p, s.mem.as_slice()) {
                return false;
            }
        }
    }
    true
}

fn new_warps(pk: &PredecodedKernel, launch: Launch, protection: Protection) -> Vec<FastWarp> {
    (0..launch.warps_per_cta())
        .map(|wid| {
            let first = wid * 32;
            let count = launch.threads_per_cta.saturating_sub(first).min(32);
            let mask = if count >= 32 {
                u32::MAX
            } else {
                (1u32 << count) - 1
            };
            FastWarp {
                wid,
                frags: vec![Fragment { pc: 0, mask }],
                rf: CowRegFile::owned(WarpRegFile::new(pk.regs(), protection)),
                preds: [0; 32],
                waiting_bar: false,
            }
        })
        .collect()
}

/// The round scheduler: identical to the reference executor's single-CTA
/// loop (64-instruction quanta per warp, barrier release when all live
/// warps wait, deadlock watchdog), with the campaign hook at the top of
/// every round. With `compiled` present, warps step through the tier-2
/// closure buffer; fused superinstructions consume two budget slots per
/// dispatch, and the final slot of a quantum always runs the tier-1
/// interpreter step so the quantum can never overshoot — warp interleaving
/// (and with it the global dynamic-instruction and eligible-op counter
/// sequences that fault targeting and detection timestamps observe) is
/// byte-identical across tiers.
fn run_rounds(
    ctx: &mut FastCtx<'_>,
    warps: &mut [FastWarp],
    hook: &mut Hook<'_>,
    compiled: Option<&CompiledKernel>,
) {
    loop {
        match hook {
            Hook::Capture {
                interval,
                next,
                out,
            } => {
                if ctx.dyn_count >= *next && !ctx.halted() {
                    // Snapshots must hold consistent codewords: restore any
                    // check bits the tier-2 engine deferred before cloning.
                    for w in warps.iter_mut() {
                        if w.rf.has_deferred() {
                            w.rf.flush_deferred();
                        }
                    }
                    let next_at = ctx.dyn_count + *interval;
                    out.push(capture_epoch(ctx, warps));
                    *next = next_at;
                }
            }
            Hook::Converge {
                ladder,
                idx,
                fault,
                fuel_ok,
                acc,
                full,
                converged,
            } => {
                if *fuel_ok && !ctx.halted() && ctx.pending_due.is_none() {
                    let snaps = &ladder.snapshots;
                    while *idx < snaps.len() && snaps[*idx].dyn_count < ctx.dyn_count {
                        *idx += 1;
                        // The candidate advanced one rung: fold that rung's
                        // golden dirty set into the accumulated union.
                        if *idx < snaps.len() {
                            acc.absorb(&snaps[*idx]);
                        }
                    }
                    if *idx < snaps.len()
                        && snaps[*idx].dyn_count == ctx.dyn_count
                        && ctx.strike_spent(fault)
                    {
                        // The stored-state comparison reads check bits:
                        // restore any the tier-2 engine deferred first. The
                        // `has_deferred` guard keeps unwritten (still
                        // shared) register files unmaterialized — a shared
                        // base is captured flushed, so it never defers.
                        for w in warps.iter_mut() {
                            if w.rf.has_deferred() {
                                w.rf.flush_deferred();
                            }
                        }
                        if state_matches(&snaps[*idx], ctx, warps, acc, *full) {
                            **converged = true;
                            return;
                        }
                    }
                }
            }
        }
        let mut progressed = false;
        for w in warps.iter_mut() {
            if w.done() || w.waiting_bar {
                continue;
            }
            let mut budget = 64i32;
            while budget > 0 {
                if w.done() || w.waiting_bar {
                    break;
                }
                match compiled {
                    Some(ck) if budget > 1 => budget -= ck.step(ctx, w, budget),
                    _ => {
                        step(ctx, w);
                        budget -= 1;
                    }
                }
                progressed = true;
                if ctx.halted() {
                    return;
                }
            }
        }
        let mut live_any = false;
        let mut all_wait = true;
        for w in warps.iter() {
            if !w.done() {
                live_any = true;
                if !w.waiting_bar {
                    all_wait = false;
                }
            }
        }
        if live_any && all_wait {
            for w in warps.iter_mut() {
                if !w.done() {
                    w.waiting_bar = false;
                }
            }
            progressed = true;
        }
        if warps.iter().all(FastWarp::done) {
            return;
        }
        if !progressed {
            ctx.error = Some(ExecError::Trap { at: ctx.dyn_count });
            return;
        }
    }
}

/// Pick the fragment the scheduler issues next: the minimum-PC fragment
/// (the reference executor's reconvergence heuristic).
///
/// # Panics
///
/// Panics when the warp has no fragments (stepping a finished warp).
#[inline]
pub(crate) fn pick_fragment(w: &FastWarp) -> usize {
    if w.frags.len() == 1 {
        return 0;
    }
    w.frags
        .iter()
        .enumerate()
        .min_by_key(|(_, f)| f.pc)
        .map(|(i, _)| i)
        .expect("stepping a finished warp")
}

/// Execute one instruction of one warp (the predecoded twin of the
/// reference executor's `step`).
fn step(ctx: &mut FastCtx<'_>, w: &mut FastWarp) {
    let fi = pick_fragment(w);
    let pc = w.frags[fi].pc;
    if pc >= ctx.pk.len() {
        w.frags.remove(fi);
        return;
    }
    let pk = ctx.pk;
    step_with(ctx, w, pk.op_ref(pc), fi);
}

/// The per-instruction body shared by the tier-1 interpreter and the tier-2
/// generic closures: guard evaluation, issue accounting, fault targeting,
/// execution, DUE promotion and fragment merging — everything `step` does
/// after picking the fragment and bounds-checking the PC.
pub(crate) fn step_with(ctx: &mut FastCtx<'_>, w: &mut FastWarp, mop: &MicroOp, fi: usize) {
    if deliver_control(ctx, w, fi) {
        return;
    }
    let frag_mask = w.frags[fi].mask;
    let exec_mask = eval_guard(mop.guard, frag_mask, &w.preds);

    if !account_issue(ctx) {
        return;
    }

    let inject = target_and_bump(ctx, mop.eligible);

    exec_uop(ctx, w, mop, fi, exec_mask, inject);

    promote_due(ctx);

    merge_frags(w);
}

/// Deliver a pending control-state strike to the warp issuing the current
/// global dynamic instruction — the predecoded twin of the reference
/// executor's delivery block, placed before guard evaluation so a predicate
/// strike misguards the very instruction it lands on. Returns `true` when
/// the issue is aborted (state-only targets corrupt control state and lose
/// the fetched instruction without advancing the dynamic counter).
pub(crate) fn deliver_control(ctx: &mut FastCtx<'_>, w: &mut FastWarp, fi: usize) -> bool {
    let Some(f) = ctx.fault else {
        return false;
    };
    let Some(ct) = f.control_target() else {
        return false;
    };
    if ctx.control_delivered || ctx.dyn_count < f.eligible_index {
        return false;
    }
    ctx.control_delivered = true;
    ctx.faults_applied += 1;
    match ct {
        ControlTarget::Predicate => {
            w.preds[f.lane as usize] ^= f.xor_mask as u8;
            false
        }
        ControlTarget::ActiveMask => {
            w.frags[fi].mask ^= f.xor_mask as u32;
            if w.frags[fi].mask == 0 {
                w.frags.remove(fi);
            }
            true
        }
        ControlTarget::Barrier => {
            w.waiting_bar = !w.waiting_bar;
            true
        }
        ControlTarget::SchedulerSlot => {
            w.frags[fi].pc ^= f.xor_mask as usize;
            true
        }
    }
}

/// Lower a pre-decoded guard to the executing lane mask.
#[inline]
pub(crate) fn eval_guard(guard: Guard, frag_mask: u32, preds: &[u8; 32]) -> u32 {
    match guard {
        Guard::Always => frag_mask,
        Guard::Never => 0,
        Guard::If(bit) => guard_mask(frag_mask, preds, bit, true),
        Guard::IfNot(bit) => guard_mask(frag_mask, preds, bit, false),
    }
}

/// Charge one issued instruction against the dynamic-count cap and the fuel
/// budget. Returns `false` when fuel ran out (the instruction must not
/// execute, exactly like the interpreter's early return).
#[inline]
pub(crate) fn account_issue(ctx: &mut FastCtx<'_>) -> bool {
    ctx.dyn_count += 1;
    if ctx.dyn_count >= ctx.max_dynamic {
        ctx.truncated = true;
    }
    if let Some(fuel) = ctx.fuel {
        if ctx.dyn_count > fuel {
            ctx.error = Some(ExecError::Hang {
                steps: ctx.dyn_count,
            });
            return false;
        }
    }
    if let Some(token) = &ctx.cancel {
        if token.is_cancelled() {
            ctx.error = Some(ExecError::Cancelled { at: ctx.dyn_count });
            return false;
        }
    }
    true
}

/// Fault targeting: per-side eligible counters advance on every eligible
/// instruction (both golden capture and trials), and the strike fires when
/// the matching side's counter reaches the sampled index.
#[inline]
pub(crate) fn target_and_bump(
    ctx: &mut FastCtx<'_>,
    eligible: Option<FaultTarget>,
) -> Option<FaultSpec> {
    let mut inject: Option<FaultSpec> = None;
    if let Some(t) = eligible {
        let seen = match t {
            FaultTarget::Original => &mut ctx.eligible_orig,
            FaultTarget::Shadow => &mut ctx.eligible_shadow,
        };
        if let Some(f) = ctx.fault {
            if f.target == t && f.fires_at(*seen) {
                inject = Some(f);
            }
        }
        *seen += 1;
    }
    inject
}

/// Promote a decode-raised pending DUE into the run's detection state.
#[inline]
pub(crate) fn promote_due(ctx: &mut FastCtx<'_>) {
    if let Some(pipeline_suspected) = ctx.pending_due.take() {
        ctx.detection = Detection::Due {
            at: ctx.dyn_count,
            pipeline_suspected,
        };
    }
}

/// Merge fragments that reconverged and drop empty ones. The single-fragment
/// case (the overwhelmingly common one) is allocation-free.
pub(crate) fn merge_frags(w: &mut FastWarp) {
    if w.frags.len() == 1 {
        if w.frags[0].mask == 0 {
            w.frags.clear();
        }
        return;
    }
    w.frags.retain(|f| f.mask != 0);
    w.frags.sort_by_key(|f| f.pc);
    let mut merged: Vec<Fragment> = Vec::with_capacity(w.frags.len());
    for f in w.frags.drain(..) {
        if let Some(last) = merged.last_mut() {
            if last.pc == f.pc {
                last.mask |= f.mask;
                continue;
            }
        }
        merged.push(f);
    }
    w.frags = merged;
}

fn guard_mask(frag_mask: u32, preds: &[u8; 32], bit: u8, want_set: bool) -> u32 {
    let mut mask = 0u32;
    let mut m = frag_mask;
    while m != 0 {
        let lane = m.trailing_zeros();
        m &= m - 1;
        let set = preds[lane as usize] & (1 << bit) != 0;
        if set == want_set {
            mask |= 1 << lane;
        }
    }
    mask
}

const RZ8: u8 = 255;

/// Read a register for one lane, recording decode events.
fn rd(ctx: &mut FastCtx<'_>, w: &mut FastWarp, lane: u32, reg: u8) -> u32 {
    if reg == RZ8 {
        return 0;
    }
    let (v, e) = w.rf.read(lane, reg);
    if let RegFileEvent::Due { pipeline_suspected } = e {
        ctx.pending_due.get_or_insert(pipeline_suspected);
    }
    v
}

fn rd64(ctx: &mut FastCtx<'_>, w: &mut FastWarp, lane: u32, reg: u8) -> u64 {
    if reg == RZ8 {
        return 0;
    }
    let lo = rd(ctx, w, lane, reg);
    let hi = rd(ctx, w, lane, pair_hi(reg));
    u64::from(hi) << 32 | u64::from(lo)
}

fn rsrc(ctx: &mut FastCtx<'_>, w: &mut FastWarp, lane: u32, s: PSrc) -> u32 {
    match s {
        PSrc::Reg(reg) => rd(ctx, w, lane, reg),
        PSrc::Imm(v) => v,
    }
}

fn pair_hi(reg: u8) -> u8 {
    assert!(reg < 254, "R{reg} has no pair register above it");
    reg + 1
}

fn write_res(w: &mut FastWarp, mode: WriteMode, lane: u32, d: u8, value: u32, golden: u32) {
    if d == RZ8 {
        return;
    }
    match mode {
        WriteMode::Full => w.rf.write_full(lane, d, value),
        WriteMode::EccOnly => w.rf.write_ecc_only(lane, d, value),
        WriteMode::Predicted => w.rf.write_predicted(lane, d, value, golden),
    }
}

fn write_res64(w: &mut FastWarp, mode: WriteMode, lane: u32, d: u8, value: u64, golden: u64) {
    write_res(w, mode, lane, d, value as u32, golden as u32);
    write_res(
        w,
        mode,
        lane,
        pair_hi(d),
        (value >> 32) as u32,
        (golden >> 32) as u32,
    );
}

fn alu2(kind: Alu2Kind, a: u32, b: u32) -> u32 {
    let f = f32::from_bits;
    match kind {
        Alu2Kind::IAdd => a.wrapping_add(b),
        Alu2Kind::ISub => a.wrapping_sub(b),
        Alu2Kind::IMul => a.wrapping_mul(b),
        Alu2Kind::IMin => (a as i32).min(b as i32) as u32,
        Alu2Kind::IMax => (a as i32).max(b as i32) as u32,
        Alu2Kind::Shl => a << (b & 31),
        Alu2Kind::Shr => a >> (b & 31),
        Alu2Kind::And => a & b,
        Alu2Kind::Or => a | b,
        Alu2Kind::Xor => a ^ b,
        Alu2Kind::FAdd => (f(a) + f(b)).to_bits(),
        Alu2Kind::FMul => (f(a) * f(b)).to_bits(),
        Alu2Kind::FMin => f(a).min(f(b)).to_bits(),
        Alu2Kind::FMax => f(a).max(f(b)).to_bits(),
    }
}

fn alu1(kind: Alu1Kind, v: u32) -> u32 {
    let f = f32::from_bits;
    match kind {
        Alu1Kind::Not => !v,
        Alu1Kind::MufuRcp => (1.0 / f(v)).to_bits(),
        Alu1Kind::MufuSqrt => f(v).sqrt().to_bits(),
        Alu1Kind::MufuEx2 => f(v).exp2().to_bits(),
        Alu1Kind::MufuLg2 => f(v).log2().to_bits(),
        Alu1Kind::I2F => (v as i32 as f32).to_bits(),
        Alu1Kind::F2I => f(v) as i32 as u32,
    }
}

#[allow(clippy::too_many_lines)]
pub(crate) fn exec_uop(
    ctx: &mut FastCtx<'_>,
    w: &mut FastWarp,
    mop: &MicroOp,
    fi: usize,
    exec_mask: u32,
    inject: Option<FaultSpec>,
) {
    // Apply the (possibly injected) fault to a 32-bit lane result.
    macro_rules! faulted32 {
        ($lane:expr, $golden:expr) => {{
            let golden: u32 = $golden;
            let mut value = golden;
            if let Some(fs) = inject {
                if fs.lane == $lane {
                    value = fs.apply32(value);
                    ctx.faults_applied += 1;
                }
            }
            (value, golden)
        }};
    }
    macro_rules! faulted64 {
        ($lane:expr, $golden:expr) => {{
            let golden: u64 = $golden;
            let mut value = golden;
            if let Some(fs) = inject {
                if fs.lane == $lane {
                    value = fs.apply64(value);
                    ctx.faults_applied += 1;
                }
            }
            (value, golden)
        }};
    }
    macro_rules! for_active {
        ($lane:ident, $body:block) => {
            let mut m = exec_mask;
            while m != 0 {
                let $lane = m.trailing_zeros();
                m &= m - 1;
                $body
            }
        };
    }

    match mop.uop {
        UOp::Nop => {
            w.frags[fi].pc += 1;
        }
        UOp::Bar => {
            if w.frags.len() > 1 && ctx.detection == Detection::None {
                ctx.detection = Detection::Hang { at: ctx.dyn_count };
            }
            w.waiting_bar = true;
            w.frags[fi].pc += 1;
        }
        UOp::Exit => {
            w.frags[fi].mask &= !exec_mask;
            w.frags[fi].pc += 1;
        }
        UOp::Trap => {
            if exec_mask != 0 {
                ctx.detection = Detection::Trap { at: ctx.dyn_count };
            }
            w.frags[fi].pc += 1;
        }
        UOp::Bra { target } => {
            let not_taken = w.frags[fi].mask & !exec_mask;
            let fall_pc = w.frags[fi].pc + 1;
            if exec_mask != 0 {
                w.frags[fi].mask = exec_mask;
                w.frags[fi].pc = target;
                if not_taken != 0 {
                    w.frags.push(Fragment {
                        pc: fall_pc,
                        mask: not_taken,
                    });
                }
            } else {
                w.frags[fi].pc = fall_pc;
            }
        }
        UOp::S2R { d, sr } => {
            for_active!(lane, {
                let golden = match sr {
                    SpecialReg::TidX => w.wid * 32 + lane,
                    SpecialReg::NTidX => ctx.launch.threads_per_cta,
                    // The campaign engine executes CTA 0 only (cta_limit=1).
                    SpecialReg::CtaIdX => 0,
                    SpecialReg::NCtaIdX => ctx.launch.ctas,
                    SpecialReg::LaneId => lane,
                    SpecialReg::WarpId => w.wid,
                };
                let (value, golden) = faulted32!(lane, golden);
                write_res(w, mop.write, lane, d, value, golden);
            });
            w.frags[fi].pc += 1;
        }
        UOp::Mov { d, a } => {
            for_active!(lane, {
                let (value, golden) = faulted32!(lane, rsrc(ctx, w, lane, a));
                write_res(w, mop.write, lane, d, value, golden);
            });
            w.frags[fi].pc += 1;
        }
        UOp::Alu2 { kind, d, a, b } => {
            for_active!(lane, {
                // The reference executor reads the shift amount before the
                // shifted value; all other two-source ops read `a` first.
                let g = if matches!(kind, Alu2Kind::Shl | Alu2Kind::Shr) {
                    let bv = rsrc(ctx, w, lane, b);
                    let av = rd(ctx, w, lane, a);
                    alu2(kind, av, bv)
                } else {
                    let av = rd(ctx, w, lane, a);
                    let bv = rsrc(ctx, w, lane, b);
                    alu2(kind, av, bv)
                };
                let (value, golden) = faulted32!(lane, g);
                write_res(w, mop.write, lane, d, value, golden);
            });
            w.frags[fi].pc += 1;
        }
        UOp::Alu1 { kind, d, a } => {
            for_active!(lane, {
                let (value, golden) = faulted32!(lane, alu1(kind, rd(ctx, w, lane, a)));
                write_res(w, mop.write, lane, d, value, golden);
            });
            w.frags[fi].pc += 1;
        }
        UOp::IMad { d, a, b, c } => {
            for_active!(lane, {
                let g = rd(ctx, w, lane, a)
                    .wrapping_mul(rd(ctx, w, lane, b))
                    .wrapping_add(rd(ctx, w, lane, c));
                let (value, golden) = faulted32!(lane, g);
                write_res(w, mop.write, lane, d, value, golden);
            });
            w.frags[fi].pc += 1;
        }
        UOp::IMadWide { d, a, b, c } => {
            for_active!(lane, {
                let av = rd(ctx, w, lane, a);
                let bv = rd(ctx, w, lane, b);
                let cv = rd64(ctx, w, lane, c);
                let g = u64::from(av).wrapping_mul(u64::from(bv)).wrapping_add(cv);
                let (value, golden) = faulted64!(lane, g);
                write_res64(w, mop.write, lane, d, value, golden);
            });
            w.frags[fi].pc += 1;
        }
        UOp::FFma { d, a, b, c } => {
            let f = f32::from_bits;
            for_active!(lane, {
                let av = rd(ctx, w, lane, a);
                let bv = rd(ctx, w, lane, b);
                let cv = rd(ctx, w, lane, c);
                let g = f(av).mul_add(f(bv), f(cv)).to_bits();
                let (value, golden) = faulted32!(lane, g);
                write_res(w, mop.write, lane, d, value, golden);
            });
            w.frags[fi].pc += 1;
        }
        UOp::DAdd { d, a, b } | UOp::DMul { d, a, b } => {
            let is_add = matches!(mop.uop, UOp::DAdd { .. });
            for_active!(lane, {
                let av = rd64(ctx, w, lane, a);
                let bv = rd64(ctx, w, lane, b);
                let fa = f64::from_bits(av);
                let fb = f64::from_bits(bv);
                let g = if is_add {
                    (fa + fb).to_bits()
                } else {
                    (fa * fb).to_bits()
                };
                let (value, golden) = faulted64!(lane, g);
                write_res64(w, mop.write, lane, d, value, golden);
            });
            w.frags[fi].pc += 1;
        }
        UOp::DFma { d, a, b, c } => {
            for_active!(lane, {
                let av = rd64(ctx, w, lane, a);
                let bv = rd64(ctx, w, lane, b);
                let cv = rd64(ctx, w, lane, c);
                let g = f64::from_bits(av)
                    .mul_add(f64::from_bits(bv), f64::from_bits(cv))
                    .to_bits();
                let (value, golden) = faulted64!(lane, g);
                write_res64(w, mop.write, lane, d, value, golden);
            });
            w.frags[fi].pc += 1;
        }
        UOp::SetP {
            p,
            skip,
            cmp,
            ty,
            a,
            b,
        } => {
            for_active!(lane, {
                let x = rd(ctx, w, lane, a);
                let y = rsrc(ctx, w, lane, b);
                let res = compare(cmp, ty, x, y);
                if !skip {
                    if res {
                        w.preds[lane as usize] |= 1 << p;
                    } else {
                        w.preds[lane as usize] &= !(1 << p);
                    }
                }
            });
            w.frags[fi].pc += 1;
        }
        UOp::Sel { d, p, p_true, a, b } => {
            for_active!(lane, {
                let bit = p_true || w.preds[lane as usize] & (1 << p) != 0;
                let g = if bit {
                    rd(ctx, w, lane, a)
                } else {
                    rsrc(ctx, w, lane, b)
                };
                let (value, golden) = faulted32!(lane, g);
                write_res(w, mop.write, lane, d, value, golden);
            });
            w.frags[fi].pc += 1;
        }
        UOp::Ld {
            d,
            space,
            addr,
            offset,
            w64,
        } => {
            for_active!(lane, {
                let base = rd(ctx, w, lane, addr).wrapping_add(offset);
                let lo = match space {
                    MemSpace::Global => ctx.mem.try_read(base),
                    MemSpace::Shared => ctx.shared.try_read(base),
                };
                let Some(lo) = lo else {
                    ctx.mem_fault(base);
                    break;
                };
                write_res(w, mop.write, lane, d, lo, lo);
                if w64 {
                    let hi = match space {
                        MemSpace::Global => ctx.mem.try_read(base.wrapping_add(4)),
                        MemSpace::Shared => ctx.shared.try_read(base.wrapping_add(4)),
                    };
                    let Some(hi) = hi else {
                        ctx.mem_fault(base.wrapping_add(4));
                        break;
                    };
                    write_res(w, mop.write, lane, pair_hi(d), hi, hi);
                }
            });
            w.frags[fi].pc += 1;
        }
        UOp::St {
            space,
            addr,
            offset,
            v,
            w64,
        } => {
            for_active!(lane, {
                let base = rd(ctx, w, lane, addr).wrapping_add(offset);
                let lo = rd(ctx, w, lane, v);
                let ok = match space {
                    MemSpace::Global => ctx.mem.try_write(base, lo),
                    MemSpace::Shared => ctx.shared.try_write(base, lo),
                };
                if !ok {
                    ctx.mem_fault(base);
                    break;
                }
                if w64 {
                    let hi = rd(ctx, w, lane, pair_hi(v));
                    let ok = match space {
                        MemSpace::Global => ctx.mem.try_write(base.wrapping_add(4), hi),
                        MemSpace::Shared => ctx.shared.try_write(base.wrapping_add(4), hi),
                    };
                    if !ok {
                        ctx.mem_fault(base.wrapping_add(4));
                        break;
                    }
                }
            });
            w.frags[fi].pc += 1;
        }
        UOp::AtomAdd { addr, offset, v } => {
            for_active!(lane, {
                let base = rd(ctx, w, lane, addr).wrapping_add(offset);
                let val = rd(ctx, w, lane, v);
                if ctx.mem.try_atomic_add(base, val).is_none() {
                    ctx.mem_fault(base);
                    break;
                }
            });
            w.frags[fi].pc += 1;
        }
        UOp::Shfl { d, a, mode } => {
            let mut vals = [0u32; 32];
            for lane in 0..32u32 {
                vals[lane as usize] = if a == RZ8 { 0 } else { w.rf.peek(lane, a) };
            }
            for_active!(lane, {
                let src_lane = match mode {
                    PShflMode::Idx(s) => rsrc(ctx, w, lane, s) & 31,
                    PShflMode::Bfly(m) => lane ^ (m & 31),
                    PShflMode::Down(dl) => (lane + dl).min(31),
                    PShflMode::Up(dl) => lane.saturating_sub(dl),
                };
                let golden = vals[src_lane as usize];
                write_res(w, mop.write, lane, d, golden, golden);
            });
            w.frags[fi].pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use swapcodes_isa::{CmpOp, CmpTy, KernelBuilder, Op, Pred, Reg, Src};

    /// A looping, divergent kernel (long enough to span several scheduler
    /// rounds, so the ladder gets multiple rungs): each thread accumulates
    /// `tid*tid + 7` over 20 iterations, threads with index < 8 take an
    /// extra increment branch, then everything is stored to global memory.
    fn test_kernel() -> Kernel {
        let mut b = KernelBuilder::new("snaptest");
        b.push(Op::S2R {
            d: Reg(0),
            sr: SpecialReg::TidX,
        });
        b.push(Op::Mov {
            d: Reg(1),
            a: Src::Imm(0),
        });
        b.push(Op::Mov {
            d: Reg(3),
            a: Src::Imm(20),
        });
        let top = b.label();
        b.bind(top);
        b.push(Op::IMad {
            d: Reg(1),
            a: Reg(0),
            b: Reg(0),
            c: Reg(1),
        });
        b.push(Op::ISub {
            d: Reg(3),
            a: Reg(3),
            b: Src::Imm(1),
        });
        b.push(Op::SetP {
            p: Pred(1),
            cmp: CmpOp::Gt,
            ty: CmpTy::I32,
            a: Reg(3),
            b: Src::Imm(0),
        });
        b.branch_if(top, Pred(1), true);
        b.push(Op::IAdd {
            d: Reg(1),
            a: Reg(1),
            b: Src::Imm(7),
        });
        b.push(Op::SetP {
            p: Pred(0),
            cmp: CmpOp::Lt,
            ty: CmpTy::I32,
            a: Reg(0),
            b: Src::Imm(8),
        });
        let skip = b.label();
        b.branch_if(skip, Pred(0), false);
        b.push(Op::IAdd {
            d: Reg(1),
            a: Reg(1),
            b: Src::Imm(100),
        });
        b.bind(skip);
        b.push(Op::Shl {
            d: Reg(2),
            a: Reg(0),
            b: Src::Imm(2),
        });
        b.push(Op::St {
            space: MemSpace::Global,
            addr: Reg(2),
            offset: 0,
            v: Reg(1),
            width: swapcodes_isa::MemWidth::W32,
        });
        b.push(Op::Exit);
        b.finish()
    }

    fn classic_golden(kernel: &Kernel, launch: Launch, mem: &mut GlobalMemory) -> u64 {
        let exec = Executor {
            config: ExecConfig {
                cta_limit: Some(1),
                ..ExecConfig::default()
            },
        };
        let out = exec.run(kernel, launch, mem).expect("golden runs");
        assert_eq!(out.detection, Detection::None);
        out.dynamic_instructions
    }

    #[test]
    fn golden_capture_matches_reference_executor() {
        let kernel = test_kernel();
        let launch = Launch::grid(1, 64);
        let mut ref_mem = GlobalMemory::new(256);
        let dynamic = classic_golden(&kernel, launch, &mut ref_mem);

        let initial = GlobalMemory::new(256);
        let (engine, cap) = CampaignEngine::capture(&kernel, launch, Protection::None, &initial, 4)
            .expect("capture");
        assert_eq!(cap.detection, Detection::None);
        assert_eq!(cap.dynamic_instructions, dynamic);
        assert_eq!(cap.mem.words(), ref_mem.words());
        assert!(engine.snapshot_count() >= 2, "ladder has multiple rungs");
        assert_eq!(engine.golden_dynamic(), dynamic);
    }

    #[test]
    fn fast_trials_match_reference_executor() {
        let kernel = test_kernel();
        let launch = Launch::grid(1, 64);
        let initial = GlobalMemory::new(256);
        let (engine, cap) = CampaignEngine::capture(&kernel, launch, Protection::None, &initial, 3)
            .expect("capture");
        let fuel = cap.dynamic_instructions * 8 + 10_000;

        let eligible = cap.eligible_orig;
        assert!(eligible > 0);
        for idx in 0..eligible.min(24) {
            for lane in [0u32, 5, 31] {
                let fault = FaultSpec::single_bit(idx, lane, 9);
                let fast = engine.run_trial(fault, fuel);

                let mut mem = GlobalMemory::new(256);
                let exec = Executor {
                    config: ExecConfig {
                        fault: Some(fault),
                        cta_limit: Some(1),
                        fuel: Some(fuel),
                        ..ExecConfig::default()
                    },
                };
                let reference = exec.run(&kernel, launch, &mut mem);
                match reference {
                    Ok(r) => {
                        assert!(fast.error.is_none(), "fast errored, reference did not");
                        assert_eq!(fast.detection, r.detection, "idx {idx} lane {lane}");
                        if fast.converged_early {
                            // Convergence promises byte-identical final
                            // memory to golden — which for Protection::None
                            // masked trials equals the reference's memory.
                            assert_eq!(r.detection, Detection::None);
                            assert_eq!(mem.words(), cap.mem.words());
                        } else {
                            assert_eq!(fast.mem.words(), mem.words(), "idx {idx} lane {lane}");
                        }
                    }
                    Err(e) => {
                        assert_eq!(fast.error, Some(e), "idx {idx} lane {lane}");
                    }
                }
            }
        }
    }

    #[test]
    fn tier2_capture_and_trials_match_tier1() {
        let kernel = test_kernel();
        let launch = Launch::grid(1, 64);
        let initial = GlobalMemory::new(256);
        let (e1, c1) = CampaignEngine::capture(&kernel, launch, Protection::None, &initial, 3)
            .expect("tier1 capture");
        let cfg = ExecConfig {
            tier: ExecTier::Tier2,
            ..ExecConfig::default()
        };
        let (e2, c2) =
            CampaignEngine::capture_config(&kernel, launch, Protection::None, &initial, 3, &cfg)
                .expect("tier2 capture");
        assert_eq!(e2.tier(), ExecTier::Tier2);
        assert!(
            e2.fused_pairs() > 0,
            "the test kernel has fusable adjacent ops"
        );
        assert_eq!(c1.dynamic_instructions, c2.dynamic_instructions);
        assert_eq!(c1.eligible_orig, c2.eligible_orig);
        assert_eq!(c1.eligible_shadow, c2.eligible_shadow);
        assert_eq!(c1.mem.words(), c2.mem.words());
        assert_eq!(e1.snapshot_count(), e2.snapshot_count());

        let fuel = c1.dynamic_instructions * 8 + 10_000;
        for idx in 0..c1.eligible_orig.min(32) {
            for lane in [0u32, 7, 31] {
                let fault = FaultSpec::single_bit(idx, lane, 13);
                let t1 = e1.run_trial(fault, fuel);
                let t2 = e2.run_trial(fault, fuel);
                assert_eq!(t1.detection, t2.detection, "idx {idx} lane {lane}");
                assert_eq!(t1.error, t2.error, "idx {idx} lane {lane}");
                assert_eq!(
                    t1.converged_early, t2.converged_early,
                    "idx {idx} lane {lane}"
                );
                assert_eq!(t1.resumed_from, t2.resumed_from, "idx {idx} lane {lane}");
                assert_eq!(t1.executed, t2.executed, "idx {idx} lane {lane}");
                assert_eq!(t1.mem.words(), t2.mem.words(), "idx {idx} lane {lane}");
            }
        }
    }

    #[test]
    fn trials_resume_past_epoch_zero() {
        let kernel = test_kernel();
        let launch = Launch::grid(1, 64);
        let initial = GlobalMemory::new(256);
        let (engine, cap) = CampaignEngine::capture(&kernel, launch, Protection::None, &initial, 2)
            .expect("capture");
        let fuel = cap.dynamic_instructions * 8 + 10_000;
        // A late injection site must resume from a later rung, executing
        // fewer instructions than the full golden run.
        let fault = FaultSpec::single_bit(cap.eligible_orig - 1, 0, 0);
        let t = engine.run_trial(fault, fuel);
        assert!(t.resumed_from > 0, "late trial resumed from epoch 0");
        assert!(t.executed < cap.dynamic_instructions);
    }

    /// Every control-state target, across a spread of delivery points,
    /// matches the reference executor outcome-for-outcome on the fast path
    /// — including trials whose control state diverges from golden (which
    /// must not early-exit Masked) and trials that deadlock (which must
    /// land in structured hang/trap accounting, never panic).
    #[test]
    fn control_fault_trials_match_reference_executor() {
        let kernel = test_kernel();
        let launch = Launch::grid(1, 64);
        let initial = GlobalMemory::new(256);
        let (engine, cap) = CampaignEngine::capture(&kernel, launch, Protection::None, &initial, 3)
            .expect("capture");
        let fuel = cap.dynamic_instructions * 8 + 10_000;
        let targets = [
            (ControlTarget::Predicate, 0b10u64),
            (ControlTarget::ActiveMask, 0x0000_FF00),
            (ControlTarget::Barrier, 0),
            (ControlTarget::SchedulerSlot, 0b101),
        ];
        let step = (cap.dynamic_instructions / 13).max(1);
        for (ct, mask) in targets {
            for at in (0..cap.dynamic_instructions).step_by(step as usize) {
                let fault = FaultSpec::try_control(at, 3, ct, mask).expect("valid control spec");
                let fast = engine.run_trial(fault, fuel);

                let mut mem = GlobalMemory::new(256);
                let exec = Executor {
                    config: ExecConfig {
                        fault: Some(fault),
                        cta_limit: Some(1),
                        fuel: Some(fuel),
                        ..ExecConfig::default()
                    },
                };
                match exec.run(&kernel, launch, &mut mem) {
                    Ok(r) => {
                        assert!(fast.error.is_none(), "{ct:?}@{at}: fast errored");
                        assert_eq!(fast.detection, r.detection, "{ct:?}@{at}");
                        if fast.converged_early {
                            assert_eq!(r.detection, Detection::None, "{ct:?}@{at}");
                            assert_eq!(mem.words(), cap.mem.words(), "{ct:?}@{at}");
                        } else {
                            assert_eq!(fast.mem.words(), mem.words(), "{ct:?}@{at}");
                        }
                    }
                    Err(e) => {
                        assert_eq!(fast.error, Some(e), "{ct:?}@{at}");
                    }
                }
            }
        }
    }

    /// Control faults execute identically through the tier-2 threaded-code
    /// buffer: fused superinstructions and superblock walks must drop to
    /// exact stepping across the delivery point.
    #[test]
    fn tier2_control_fault_trials_match_tier1() {
        let kernel = test_kernel();
        let launch = Launch::grid(1, 64);
        let initial = GlobalMemory::new(256);
        let (e1, c1) = CampaignEngine::capture(&kernel, launch, Protection::None, &initial, 3)
            .expect("tier1 capture");
        let cfg = ExecConfig {
            tier: ExecTier::Tier2,
            ..ExecConfig::default()
        };
        let (e2, _) =
            CampaignEngine::capture_config(&kernel, launch, Protection::None, &initial, 3, &cfg)
                .expect("tier2 capture");
        let fuel = c1.dynamic_instructions * 8 + 10_000;
        let targets = [
            (ControlTarget::Predicate, 0b11u64),
            (ControlTarget::ActiveMask, 0xF0F0_F0F0),
            (ControlTarget::Barrier, 0),
            (ControlTarget::SchedulerSlot, 0b110),
        ];
        let step = (c1.dynamic_instructions / 17).max(1);
        for (ct, mask) in targets {
            for at in (0..c1.dynamic_instructions).step_by(step as usize) {
                let fault = FaultSpec::try_control(at, 1, ct, mask).expect("valid control spec");
                let t1 = e1.run_trial(fault, fuel);
                let t2 = e2.run_trial(fault, fuel);
                assert_eq!(t1.detection, t2.detection, "{ct:?}@{at}");
                assert_eq!(t1.error, t2.error, "{ct:?}@{at}");
                assert_eq!(t1.converged_early, t2.converged_early, "{ct:?}@{at}");
                assert_eq!(t1.executed, t2.executed, "{ct:?}@{at}");
                assert_eq!(t1.mem.words(), t2.mem.words(), "{ct:?}@{at}");
            }
        }
    }

    /// Stuck-at defects re-assert on every eligible access, so the fast
    /// path must never prune their suffix via golden convergence; outcomes
    /// still match the reference executor exactly, on both tiers.
    #[test]
    fn stuck_at_trials_match_reference_and_never_converge() {
        let kernel = test_kernel();
        let launch = Launch::grid(1, 64);
        let initial = GlobalMemory::new(256);
        let (e1, cap) = CampaignEngine::capture(&kernel, launch, Protection::None, &initial, 3)
            .expect("capture");
        let cfg = ExecConfig {
            tier: ExecTier::Tier2,
            ..ExecConfig::default()
        };
        let (e2, _) =
            CampaignEngine::capture_config(&kernel, launch, Protection::None, &initial, 3, &cfg)
                .expect("tier2 capture");
        let fuel = cap.dynamic_instructions * 8 + 10_000;
        for idx in (0..cap.eligible_orig.min(20)).step_by(3) {
            for (value, period) in [(true, 0u32), (false, 0), (true, 2)] {
                let fault =
                    FaultSpec::try_stuck_at(idx, 2, 5, value, 9, period, FaultTarget::Original)
                        .expect("valid stuck-at spec");
                let fast = e1.run_trial(fault, fuel);
                assert!(
                    !fast.converged_early,
                    "stuck-at trial must not early-exit (idx {idx})"
                );
                let t2 = e2.run_trial(fault, fuel);
                assert_eq!(
                    fast.detection, t2.detection,
                    "idx {idx} v={value} p={period}"
                );
                assert_eq!(fast.error, t2.error, "idx {idx} v={value} p={period}");
                assert_eq!(fast.mem.words(), t2.mem.words(), "idx {idx}");

                let mut mem = GlobalMemory::new(256);
                let exec = Executor {
                    config: ExecConfig {
                        fault: Some(fault),
                        cta_limit: Some(1),
                        fuel: Some(fuel),
                        ..ExecConfig::default()
                    },
                };
                match exec.run(&kernel, launch, &mut mem) {
                    Ok(r) => {
                        assert_eq!(fast.detection, r.detection, "idx {idx} v={value}");
                        assert_eq!(fast.mem.words(), mem.words(), "idx {idx} v={value}");
                    }
                    Err(e) => assert_eq!(fast.error, Some(e), "idx {idx} v={value}"),
                }
            }
        }
    }
}
