//! A SIMT streaming-multiprocessor simulator with an ECC-protected register
//! file — the execution substrate standing in for the paper's Tesla P100.
//!
//! The simulator has two cooperating halves:
//!
//! * a **functional executor** ([`exec`]) that runs kernels written in the
//!   [`swapcodes_isa`] IR with full SIMT semantics (warps, divergence by
//!   PC-reconvergence, CTA barriers, shuffles, atomics), backed by a
//!   register file ([`regfile`]) that physically stores ECC check bits and
//!   decodes them on every read — which is exactly where SwapCodes detects
//!   pipeline errors. The executor emits a per-warp dynamic trace and
//!   supports architecture-level transient fault injection into instruction
//!   results ([`fault`]);
//! * a **timing model** ([`timing`]) that replays those traces on a
//!   cycle-level SM: greedy-then-oldest warp schedulers, a writeback-latency
//!   scoreboard (no register bypassing, §III-A), per-functional-unit issue
//!   throughput, a bandwidth- and latency-modelled memory system, and
//!   occupancy derived from register/thread/CTA limits ([`mod@occupancy`]).
//!
//! The [`profiler`] classifies dynamic instructions by provenance (the
//! paper's Fig. 13 categories) and traces operand values for gate-level
//! injection; [`power`] provides the activity-based power/energy estimates
//! behind Fig. 14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod fault;
pub mod memory;
pub mod occupancy;
pub mod power;
pub mod predecode;
pub mod profiler;
pub mod recovery;
pub mod regfile;
pub mod snapshot;
pub mod tier2;
pub mod timing;

pub use exec::{CancelToken, ExecError, ExecOutcome, Executor, Launch, TraceEntry, WarpTrace};
pub use fault::{
    ControlTarget, FaultClass, FaultSpec, FaultSpecError, FaultTarget, StuckAtSpec, RESULT_WIDTH,
    WARP_WIDTH,
};
pub use memory::{CowMemory, CowShared, GlobalMemory, SharedMemory, DEFAULT_COW_PAGE_WORDS};
pub use occupancy::{occupancy, GpuConfig, Occupancy};
pub use predecode::PredecodedKernel;
pub use recovery::{
    RecoveryConfig, RecoveryEngine, RecoveryOutcome, RecoveryPolicy, RecoveryRun, RecoverySpec,
    RecoveryStats,
};
pub use regfile::{CowRegFile, Protection, RegFileEvent, WarpRegFile};
pub use snapshot::{
    CampaignEngine, EpochLadder, FastTrial, Fragment, GoldenCapture, ResumeMode, WarpSnapshot,
};
pub use tier2::{CompiledKernel, ExecTier};
pub use timing::{simulate_kernel, KernelTiming, RecoveryCostModel, TimingConfig};
