//! Predecoded micro-op front-end for campaign execution.
//!
//! Injection campaigns execute the same kernel tens of thousands of times.
//! The reference executor ([`crate::exec`]) re-interprets the [`Op`] enum on
//! every dynamic step: it copies the full `Instr`, re-evaluates guard
//! predicates through `Pred` helpers, re-derives duplication eligibility
//! from the functional-unit class, and dispatches arithmetic through
//! `&dyn Fn` closures. None of that depends on dynamic state — it is pure
//! per-static-instruction work — so campaigns lower the kernel **once** into
//! a flat [`MicroOp`] table with pre-resolved operands, pre-lowered guards,
//! a pre-picked register write mode, and a pre-computed fault-eligibility
//! tag. The fast-forward engine in [`crate::snapshot`] interprets this table
//! for both the golden capture run and every trial.
//!
//! The lowering is intentionally *bijective on semantics*: every field that
//! influences the reference executor's architectural behaviour (and nothing
//! else) survives into the micro-op, which is what makes the differential
//! tests between the two engines meaningful.

use swapcodes_isa::{
    CmpOp, CmpTy, Instr, Kernel, MemSpace, MemWidth, Op, Role, ShflMode, SpecialReg, Src,
};

use crate::fault::FaultTarget;

/// A pre-resolved scalar source operand: the register number (255 = `RZ`) or
/// the immediate already cast to its bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PSrc {
    /// Register operand (`255` is the hardwired zero register).
    Reg(u8),
    /// Immediate bit pattern.
    Imm(u32),
}

impl PSrc {
    fn lower(s: Src) -> Self {
        match s {
            Src::Reg(r) => PSrc::Reg(r.0),
            Src::Imm(i) => PSrc::Imm(i as u32),
        }
    }
}

/// A pre-lowered instruction guard. `PT`-guarded instructions collapse to
/// [`Guard::Always`]/[`Guard::Never`] at predecode time, so the interpreter
/// never consults `Pred::is_true` per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// Executes on all fragment lanes.
    Always,
    /// Executes on no lane (`@!PT`): still issued, still counted.
    Never,
    /// Executes on lanes whose predicate bit is set.
    If(u8),
    /// Executes on lanes whose predicate bit is clear.
    IfNot(u8),
}

impl Guard {
    fn lower(guard: Option<(swapcodes_isa::Pred, bool)>) -> Self {
        match guard {
            None => Guard::Always,
            Some((p, pol)) if p.is_true() => {
                if pol {
                    Guard::Always
                } else {
                    Guard::Never
                }
            }
            Some((p, true)) => Guard::If(p.0),
            Some((p, false)) => Guard::IfNot(p.0),
        }
    }
}

/// Which register-file write path the instruction's results take
/// (pre-resolved from the `ecc_only`/`predicted` transform flags, in the
/// same precedence order as the reference executor's `write_result`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Full write: data, check bits and parity from the computed value.
    Full,
    /// Swap-ECC shadow: masked write of the check bits only.
    EccOnly,
    /// Swap-Predict: data from the datapath, check bits from the (fault-free)
    /// predicted value.
    Predicted,
}

/// Two-source ALU operations sharing one interpreter loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Alu2Kind {
    IAdd,
    ISub,
    IMul,
    IMin,
    IMax,
    Shl,
    Shr,
    And,
    Or,
    Xor,
    FAdd,
    FMul,
    FMin,
    FMax,
}

/// One-source ALU operations sharing one interpreter loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Alu1Kind {
    Not,
    MufuRcp,
    MufuSqrt,
    MufuEx2,
    MufuLg2,
    I2F,
    F2I,
}

/// Pre-lowered shuffle addressing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PShflMode {
    /// Absolute lane index from a pre-resolved source.
    Idx(PSrc),
    /// XOR-butterfly mask.
    Bfly(u32),
    /// `lane + delta`, clamped to 31.
    Down(u32),
    /// `lane - delta`, saturating at 0.
    Up(u32),
}

/// The lowered operation. Register fields are raw `u8` numbers (255 = `RZ`);
/// memory offsets are pre-cast to the `u32` the address arithmetic wraps
/// with; 64-bit operations name the base register of the pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UOp {
    Nop,
    Bar,
    Exit,
    Trap,
    Bra {
        target: usize,
    },
    S2R {
        d: u8,
        sr: SpecialReg,
    },
    Mov {
        d: u8,
        a: PSrc,
    },
    Alu2 {
        kind: Alu2Kind,
        d: u8,
        a: u8,
        b: PSrc,
    },
    Alu1 {
        kind: Alu1Kind,
        d: u8,
        a: u8,
    },
    IMad {
        d: u8,
        a: u8,
        b: u8,
        c: u8,
    },
    IMadWide {
        d: u8,
        a: u8,
        b: u8,
        c: u8,
    },
    FFma {
        d: u8,
        a: u8,
        b: u8,
        c: u8,
    },
    DAdd {
        d: u8,
        a: u8,
        b: u8,
    },
    DMul {
        d: u8,
        a: u8,
        b: u8,
    },
    DFma {
        d: u8,
        a: u8,
        b: u8,
        c: u8,
    },
    SetP {
        p: u8,
        skip: bool,
        cmp: CmpOp,
        ty: CmpTy,
        a: u8,
        b: PSrc,
    },
    Sel {
        d: u8,
        p: u8,
        p_true: bool,
        a: u8,
        b: PSrc,
    },
    Ld {
        d: u8,
        space: MemSpace,
        addr: u8,
        offset: u32,
        w64: bool,
    },
    St {
        space: MemSpace,
        addr: u8,
        offset: u32,
        v: u8,
        w64: bool,
    },
    AtomAdd {
        addr: u8,
        offset: u32,
        v: u8,
    },
    Shfl {
        d: u8,
        a: u8,
        mode: PShflMode,
    },
}

/// One predecoded instruction: the lowered operation plus everything the
/// per-step front end of the reference executor would otherwise re-derive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// The lowered operation.
    pub uop: UOp,
    /// Pre-lowered guard.
    pub guard: Guard,
    /// Pre-resolved register write path.
    pub write: WriteMode,
    /// `Some(side)` when the instruction is duplication-eligible: the fault
    /// target side a campaign strike on this instruction would count against
    /// (`Shadow` for `ecc_only` or `Role::Shadow` instructions, `Original`
    /// otherwise) — the same predicate the reference executor evaluates per
    /// step in its fault-targeting block.
    pub eligible: Option<FaultTarget>,
}

/// A kernel lowered to a flat micro-op table, built once per campaign.
#[derive(Debug, Clone)]
pub struct PredecodedKernel {
    ops: Vec<MicroOp>,
    regs: u32,
}

impl PredecodedKernel {
    /// Lower `kernel` into micro-ops.
    #[must_use]
    pub fn new(kernel: &Kernel) -> Self {
        Self {
            ops: kernel.instrs().iter().map(lower).collect(),
            regs: kernel.register_count().max(1),
        }
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the kernel has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The micro-op at static index `pc`.
    #[must_use]
    pub fn op(&self, pc: usize) -> MicroOp {
        self.ops[pc]
    }

    /// Borrow the micro-op at static index `pc` without copying the 24-byte
    /// `MicroOp` — the accessor hot loops should use.
    #[inline]
    #[must_use]
    pub fn op_ref(&self, pc: usize) -> &MicroOp {
        &self.ops[pc]
    }

    /// Registers per lane (matching `Kernel::register_count().max(1)`).
    #[must_use]
    pub fn regs(&self) -> u32 {
        self.regs
    }
}

fn lower(instr: &Instr) -> MicroOp {
    let uop = match instr.op {
        Op::Nop => UOp::Nop,
        Op::Bar => UOp::Bar,
        Op::Exit => UOp::Exit,
        Op::Trap => UOp::Trap,
        Op::Bra { target } => UOp::Bra { target },
        Op::S2R { d, sr } => UOp::S2R { d: d.0, sr },
        Op::Mov { d, a } => UOp::Mov {
            d: d.0,
            a: PSrc::lower(a),
        },
        Op::IAdd { d, a, b } => alu2(Alu2Kind::IAdd, d.0, a.0, b),
        Op::ISub { d, a, b } => alu2(Alu2Kind::ISub, d.0, a.0, b),
        Op::IMul { d, a, b } => alu2(Alu2Kind::IMul, d.0, a.0, b),
        Op::IMin { d, a, b } => alu2(Alu2Kind::IMin, d.0, a.0, b),
        Op::IMax { d, a, b } => alu2(Alu2Kind::IMax, d.0, a.0, b),
        Op::Shl { d, a, b } => alu2(Alu2Kind::Shl, d.0, a.0, b),
        Op::Shr { d, a, b } => alu2(Alu2Kind::Shr, d.0, a.0, b),
        Op::And { d, a, b } => alu2(Alu2Kind::And, d.0, a.0, b),
        Op::Or { d, a, b } => alu2(Alu2Kind::Or, d.0, a.0, b),
        Op::Xor { d, a, b } => alu2(Alu2Kind::Xor, d.0, a.0, b),
        Op::FAdd { d, a, b } => alu2(Alu2Kind::FAdd, d.0, a.0, b),
        Op::FMul { d, a, b } => alu2(Alu2Kind::FMul, d.0, a.0, b),
        Op::FMin { d, a, b } => alu2(Alu2Kind::FMin, d.0, a.0, b),
        Op::FMax { d, a, b } => alu2(Alu2Kind::FMax, d.0, a.0, b),
        Op::Not { d, a } => alu1(Alu1Kind::Not, d.0, a.0),
        Op::MufuRcp { d, a } => alu1(Alu1Kind::MufuRcp, d.0, a.0),
        Op::MufuSqrt { d, a } => alu1(Alu1Kind::MufuSqrt, d.0, a.0),
        Op::MufuEx2 { d, a } => alu1(Alu1Kind::MufuEx2, d.0, a.0),
        Op::MufuLg2 { d, a } => alu1(Alu1Kind::MufuLg2, d.0, a.0),
        Op::I2F { d, a } => alu1(Alu1Kind::I2F, d.0, a.0),
        Op::F2I { d, a } => alu1(Alu1Kind::F2I, d.0, a.0),
        Op::IMad { d, a, b, c } => UOp::IMad {
            d: d.0,
            a: a.0,
            b: b.0,
            c: c.0,
        },
        Op::IMadWide { d, a, b, c } => UOp::IMadWide {
            d: d.0,
            a: a.0,
            b: b.0,
            c: c.0,
        },
        Op::FFma { d, a, b, c } => UOp::FFma {
            d: d.0,
            a: a.0,
            b: b.0,
            c: c.0,
        },
        Op::DAdd { d, a, b } => UOp::DAdd {
            d: d.0,
            a: a.0,
            b: b.0,
        },
        Op::DMul { d, a, b } => UOp::DMul {
            d: d.0,
            a: a.0,
            b: b.0,
        },
        Op::DFma { d, a, b, c } => UOp::DFma {
            d: d.0,
            a: a.0,
            b: b.0,
            c: c.0,
        },
        Op::SetP { p, cmp, ty, a, b } => UOp::SetP {
            p: p.0,
            skip: p.is_true(),
            cmp,
            ty,
            a: a.0,
            b: PSrc::lower(b),
        },
        Op::Sel { d, p, a, b } => UOp::Sel {
            d: d.0,
            p: p.0,
            p_true: p.is_true(),
            a: a.0,
            b: PSrc::lower(b),
        },
        Op::Ld {
            d,
            space,
            addr,
            offset,
            width,
        } => UOp::Ld {
            d: d.0,
            space,
            addr: addr.0,
            offset: offset as u32,
            w64: width == MemWidth::W64,
        },
        Op::St {
            space,
            addr,
            offset,
            v,
            width,
        } => UOp::St {
            space,
            addr: addr.0,
            offset: offset as u32,
            v: v.0,
            w64: width == MemWidth::W64,
        },
        Op::AtomAdd { addr, offset, v } => UOp::AtomAdd {
            addr: addr.0,
            offset: offset as u32,
            v: v.0,
        },
        Op::Shfl { d, a, mode } => UOp::Shfl {
            d: d.0,
            a: a.0,
            mode: match mode {
                ShflMode::Idx(s) => PShflMode::Idx(PSrc::lower(s)),
                ShflMode::Bfly(m) => PShflMode::Bfly(m),
                ShflMode::Down(dl) => PShflMode::Down(dl),
                ShflMode::Up(dl) => PShflMode::Up(dl),
            },
        },
    };
    let write = if instr.ecc_only {
        WriteMode::EccOnly
    } else if instr.predicted {
        WriteMode::Predicted
    } else {
        WriteMode::Full
    };
    let eligible = if instr.op.is_dup_eligible() {
        if instr.ecc_only || instr.role == Role::Shadow {
            Some(FaultTarget::Shadow)
        } else {
            Some(FaultTarget::Original)
        }
    } else {
        None
    };
    MicroOp {
        uop,
        guard: Guard::lower(instr.guard),
        write,
        eligible,
    }
}

fn alu2(kind: Alu2Kind, d: u8, a: u8, b: Src) -> UOp {
    UOp::Alu2 {
        kind,
        d,
        a,
        b: PSrc::lower(b),
    }
}

fn alu1(kind: Alu1Kind, d: u8, a: u8) -> UOp {
    UOp::Alu1 { kind, d, a }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcodes_isa::{KernelBuilder, Pred, Reg, PT, RZ};

    #[test]
    fn guards_lower_to_static_forms() {
        assert_eq!(Guard::lower(None), Guard::Always);
        assert_eq!(Guard::lower(Some((PT, true))), Guard::Always);
        assert_eq!(Guard::lower(Some((PT, false))), Guard::Never);
        assert_eq!(Guard::lower(Some((Pred(2), true))), Guard::If(2));
        assert_eq!(Guard::lower(Some((Pred(2), false))), Guard::IfNot(2));
    }

    #[test]
    fn eligibility_matches_reference_predicate() {
        let mut b = KernelBuilder::new("pd");
        b.push(Op::IAdd {
            d: Reg(0),
            a: RZ,
            b: Src::Imm(1),
        });
        b.push(Op::Ld {
            d: Reg(1),
            space: MemSpace::Global,
            addr: Reg(0),
            offset: 0,
            width: MemWidth::W32,
        });
        b.push(Op::Exit);
        let k = b.finish();
        let pk = PredecodedKernel::new(&k);
        assert_eq!(pk.op(0).eligible, Some(FaultTarget::Original));
        assert_eq!(pk.op(1).eligible, None, "loads are not dup-eligible");
        assert_eq!(pk.op(2).eligible, None);
        assert_eq!(pk.len(), 3);
    }
}
