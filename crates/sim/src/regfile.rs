//! The ECC-protected vector register file.
//!
//! Every register physically stores its data segment alongside ECC check
//! bits (and, for the DP schemes, the data-parity bit). Original-instruction
//! writes fill the whole word; Swap-ECC shadow instructions perform a masked
//! write of only the check bits (Table II's data write enable); Swap-Predict
//! writes pair the datapath result with check bits formed by the prediction
//! pipeline. Every operand read runs the decoder, which is where SwapCodes
//! turns pipeline errors into DUEs.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use swapcodes_ecc::report::{DpWord, ReadEvent, SecDedDp, SecDp};
use swapcodes_ecc::swap::{self, SwappedWord};
use swapcodes_ecc::{parity32, AnyCode, CodeKind, RawDecode, SystematicCode};

/// Register-file protection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protection {
    /// No ECC (or ECC modelling disabled).
    None,
    /// A detection-only code: residue, parity, or SEC-DED-used-as-TED.
    DetectOnly(CodeKind),
    /// SEC-DED with the data-parity reporting algorithm (storage correction
    /// preserved, pipeline miscorrection impossible).
    SecDedDp,
    /// SEC + data parity within SEC-DED redundancy.
    SecDp,
}

/// What a protected register read observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegFileEvent {
    /// Word decoded cleanly.
    Clean,
    /// A storage error was corrected (DP schemes only).
    Corrected,
    /// Detected-uncorrectable error; `pipeline_suspected` is set when the
    /// augmented reporting attributes it to a compute error.
    Due {
        /// Whether the Fig. 5 reporting attributed the error to the pipeline.
        pipeline_suspected: bool,
    },
}

impl RegFileEvent {
    /// Whether this read must raise a machine check.
    #[must_use]
    pub fn is_due(self) -> bool {
        matches!(self, RegFileEvent::Due { .. })
    }
}

/// One stored register word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Stored {
    data: u32,
    check: u16,
    parity: bool,
}

#[derive(Clone)]
enum Decoder {
    None,
    Detect(AnyCode),
    SecDedDp(SecDedDp),
    SecDp(SecDp),
}

impl std::fmt::Debug for Decoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Decoder::None => "None",
            Decoder::Detect(_) => "Detect",
            Decoder::SecDedDp(_) => "SecDedDp",
            Decoder::SecDp(_) => "SecDp",
        };
        f.write_str(name)
    }
}

/// The register file of one warp: 32 lanes x `regs` registers, each with
/// stored check bits. Cloning snapshots the full stored state (data, check
/// bits, parity and the armed flag) — the basis of warp-level
/// checkpoint/replay in [`crate::recovery`].
///
/// # Deferred encoding
///
/// While the file is unarmed, every stored word is a consistent codeword,
/// so the check segment is a pure function of the data segment
/// (`check == encode(data)`). The tier-2 engine exploits this: with
/// [`Self::set_deferred`] enabled, [`Self::write_full`] stores only the
/// data segment and marks the register dirty, and the codeword invariant
/// is restored lazily — by [`Self::flush_deferred`] at every point where
/// check bits become observable (epoch snapshot capture, golden-state
/// comparison, decoder arming) and inside [`Self::write_ecc_only`] for the
/// one register the shadow compares against. Because flushing re-encodes
/// from the stored data, the restored word is bit-identical to what eager
/// encoding would have produced, so deferral is architecturally invisible.
#[derive(Debug, Clone)]
pub struct WarpRegFile {
    regs: u32,
    words: Vec<Stored>,
    decoder: Decoder,
    /// Fast path: when no fault has been injected the file cannot hold a
    /// non-codeword, so decode is skipped until the first raw write.
    armed: bool,
    /// Deferred-encode mode (tier-2 engine): full writes store only data
    /// and set a dirty bit instead of encoding check bits eagerly.
    deferred: bool,
    /// One bit per architectural register whose check bits are stale
    /// (all 32 lanes are re-encoded together on flush).
    dirty: Vec<u64>,
    /// One bit per architectural register written since the last
    /// [`Self::take_touched`] — the trial/epoch dirty-register superset the
    /// copy-on-write resume path compares against golden state (DESIGN §14).
    /// Deferred-dirty is always a subset of touched (a deferred write sets
    /// both), so lazy flushing never writes an untouched register.
    touched: Vec<u64>,
}

impl WarpRegFile {
    /// Create a zeroed register file for one warp.
    #[must_use]
    pub fn new(regs: u32, protection: Protection) -> Self {
        let decoder = match protection {
            Protection::None => Decoder::None,
            Protection::DetectOnly(kind) => Decoder::Detect(kind.build()),
            Protection::SecDedDp => Decoder::SecDedDp(SecDedDp::new_secded_dp()),
            Protection::SecDp => Decoder::SecDp(SecDp::new_sec_dp()),
        };
        // A zeroed word is a codeword for every supported code
        // (linear codes: encode(0) == 0; residue of 0 is 0).
        Self {
            regs,
            words: vec![Stored::default(); 32 * regs as usize],
            decoder,
            armed: false,
            deferred: false,
            dirty: vec![0; (regs as usize).div_ceil(64)],
            touched: vec![0; (regs as usize).div_ceil(64)],
        }
    }

    /// Number of registers per lane.
    #[must_use]
    pub fn regs(&self) -> u32 {
        self.regs
    }

    #[inline]
    fn idx(&self, lane: u32, reg: u8) -> usize {
        debug_assert!(lane < 32);
        debug_assert!(u32::from(reg) < self.regs, "R{reg} out of range");
        lane as usize * self.regs as usize + usize::from(reg)
    }

    fn encode(&self, value: u32) -> (u16, bool) {
        match &self.decoder {
            Decoder::None => (0, false),
            Decoder::Detect(code) => (code.encode(value), false),
            Decoder::SecDedDp(rep) => (rep.code().encode(value), parity32(value)),
            Decoder::SecDp(rep) => (rep.code().encode(value), parity32(value)),
        }
    }

    /// Enable or disable deferred encoding (see the type-level docs). A
    /// request to enable it on an armed file is ignored: once the decoder is
    /// armed every read inspects check bits, so they must stay eager.
    pub fn set_deferred(&mut self, on: bool) {
        self.deferred = on && !self.armed;
    }

    /// Whether any register currently holds stale (deferred) check bits.
    #[must_use]
    pub fn has_deferred(&self) -> bool {
        self.dirty.iter().any(|&w| w != 0)
    }

    /// Restore the codeword invariant for every dirty register by
    /// re-encoding the check segment from the stored data. While the file is
    /// unarmed this reproduces exactly the bits an eager write would have
    /// stored, so it is safe to call at any observation point.
    pub fn flush_deferred(&mut self) {
        for word in 0..self.dirty.len() {
            let mut bits = self.dirty[word];
            self.dirty[word] = 0;
            while bits != 0 {
                let reg = (word * 64) as u32 + bits.trailing_zeros();
                bits &= bits - 1;
                self.reencode_lanes(reg);
            }
        }
    }

    #[inline]
    fn touch(&mut self, reg: u8) {
        self.touched[usize::from(reg) >> 6] |= 1 << (reg & 63);
    }

    /// One bit per register written since the last [`Self::take_touched`].
    #[must_use]
    pub fn touched_bits(&self) -> &[u64] {
        &self.touched
    }

    /// Drain the touched-register bitmap, returning the old bits and
    /// resetting the tracker. Called at epoch capture so resumed trials
    /// start from a snapshot with an empty dirty superset.
    pub fn take_touched(&mut self) -> Vec<u64> {
        let fresh = vec![0; self.touched.len()];
        std::mem::replace(&mut self.touched, fresh)
    }

    #[inline]
    fn reg_dirty(&self, reg: u8) -> bool {
        self.dirty[usize::from(reg) >> 6] & (1 << (reg & 63)) != 0
    }

    /// Re-encode one register's check bits (all 32 lanes) from its stored
    /// data and clear its dirty bit.
    fn reencode_reg(&mut self, reg: u8) {
        self.dirty[usize::from(reg) >> 6] &= !(1 << (reg & 63));
        self.reencode_lanes(u32::from(reg));
    }

    fn reencode_lanes(&mut self, reg: u32) {
        for lane in 0..32 {
            let i = lane as usize * self.regs as usize + reg as usize;
            let (check, parity) = self.encode(self.words[i].data);
            self.words[i].check = check;
            self.words[i].parity = parity;
        }
    }

    /// Leave the clean fast path: flush any deferred check bits first (they
    /// are about to become observable through the decoder), then disable
    /// deferral and start decoding on every read.
    fn arm(&mut self) {
        if self.has_deferred() {
            self.flush_deferred();
        }
        self.deferred = false;
        self.armed = true;
    }

    /// Full write by an original (or un-duplicated) instruction: data, check
    /// bits and data parity all from `value`. In deferred mode only the data
    /// segment is stored and the register is marked dirty; the check segment
    /// is re-encoded (to the identical bits) before any observer reads it.
    pub fn write_full(&mut self, lane: u32, reg: u8, value: u32) {
        let i = self.idx(lane, reg);
        self.touch(reg);
        if self.deferred {
            self.words[i].data = value;
            self.dirty[usize::from(reg) >> 6] |= 1 << (reg & 63);
            return;
        }
        let (check, parity) = self.encode(value);
        self.words[i] = Stored {
            data: value,
            check,
            parity,
        };
    }

    /// Masked write by a Swap-ECC shadow instruction: only the check bits,
    /// computed from the shadow's own result.
    pub fn write_ecc_only(&mut self, lane: u32, reg: u8, shadow_value: u32) {
        self.touch(reg);
        if self.reg_dirty(reg) {
            // The shadow compares against this register's stored check
            // bits: restore the codeword invariant for it first.
            self.reencode_reg(reg);
        }
        let (check, _) = self.encode(shadow_value);
        let i = self.idx(lane, reg);
        if self.words[i].check != check {
            // A disagreeing shadow means someone computed a wrong value —
            // leave the fast path so reads start decoding.
            self.arm();
        }
        self.words[i].check = check;
    }

    /// Write by a Swap-Predict-covered instruction: the data comes from the
    /// (possibly faulty) datapath while the check bits come from the
    /// prediction pipeline operating on the input residues — i.e. from the
    /// fault-free `predicted_value`.
    pub fn write_predicted(&mut self, lane: u32, reg: u8, value: u32, predicted_value: u32) {
        self.touch(reg);
        if self.reg_dirty(reg) {
            // This write stores a deliberately inconsistent codeword (or is
            // about to corrupt one): restore the deferred lanes first so a
            // later flush cannot re-encode over the evidence.
            self.reencode_reg(reg);
        }
        let (check, _) = self.encode(predicted_value);
        // The data-parity bit is produced from the datapath output.
        let parity = match &self.decoder {
            Decoder::None | Decoder::Detect(_) => false,
            _ => parity32(value),
        };
        let i = self.idx(lane, reg);
        self.words[i] = Stored {
            data: value,
            check,
            parity,
        };
        if value != predicted_value {
            self.arm();
        }
    }

    /// Write a value whose data may be faulty while the check segment
    /// reflects `check_source` (the swapped-codeword composition used when a
    /// fault is injected into an original instruction).
    pub fn write_split(&mut self, lane: u32, reg: u8, data: u32, check_source: u32) {
        self.touch(reg);
        if self.reg_dirty(reg) {
            // This write stores a deliberately inconsistent codeword (or is
            // about to corrupt one): restore the deferred lanes first so a
            // later flush cannot re-encode over the evidence.
            self.reencode_reg(reg);
        }
        let (check, _) = self.encode(check_source);
        let i = self.idx(lane, reg);
        self.words[i] = Stored {
            data,
            check,
            parity: match &self.decoder {
                Decoder::None | Decoder::Detect(_) => false,
                _ => parity32(data),
            },
        };
        if data != check_source {
            self.arm();
        }
    }

    /// Read a register through the decoder. Takes `&self`: reads never
    /// mutate stored state, which is what lets a copy-on-write resume share
    /// one base file across every trial of an epoch batch.
    pub fn read(&self, lane: u32, reg: u8) -> (u32, RegFileEvent) {
        let i = self.idx(lane, reg);
        let w = self.words[i];
        if !self.armed {
            return (w.data, RegFileEvent::Clean);
        }
        match &self.decoder {
            Decoder::None => (w.data, RegFileEvent::Clean),
            Decoder::Detect(code) => {
                if code.decode(w.data, w.check) == RawDecode::Clean {
                    (w.data, RegFileEvent::Clean)
                } else {
                    (
                        w.data,
                        RegFileEvent::Due {
                            pipeline_suspected: true,
                        },
                    )
                }
            }
            Decoder::SecDedDp(rep) => {
                let word = DpWord {
                    data: w.data,
                    check: w.check,
                    data_parity: w.parity,
                };
                let r = rep.read(word);
                (r.value, convert(r.event))
            }
            Decoder::SecDp(rep) => {
                let word = DpWord {
                    data: w.data,
                    check: w.check,
                    data_parity: w.parity,
                };
                let r = rep.read(word);
                (r.value, convert(r.event))
            }
        }
    }

    /// Read without decoding (debugger view; §III-A explains why error-free
    /// Swap-ECC registers are always valid codewords, keeping this safe).
    #[must_use]
    pub fn peek(&self, lane: u32, reg: u8) -> u32 {
        self.words[self.idx(lane, reg)].data
    }

    /// Whether two register files hold byte-identical stored state (data,
    /// check bits and data parity for every lane/register).
    ///
    /// The decoder `armed` fast-path flag is intentionally ignored: it is a
    /// performance hint, not architectural state. When every stored word
    /// equals a word written by a fault-free run, each word is a consistent
    /// codeword, so decoding (armed) and not decoding (unarmed) return the
    /// same values and events.
    #[must_use]
    pub fn stored_eq(&self, other: &Self) -> bool {
        debug_assert!(
            !self.has_deferred() && !other.has_deferred(),
            "stored-state comparison requires flushed check bits"
        );
        self.words == other.words
    }

    /// Whether one architectural register (all 32 lanes) holds byte-identical
    /// stored state in both files — the per-register unit of the dirty-only
    /// golden comparison (DESIGN §14). Same flushed-precondition as
    /// [`Self::stored_eq`].
    #[must_use]
    pub fn stored_eq_reg(&self, other: &Self, reg: u8) -> bool {
        debug_assert_eq!(self.regs, other.regs);
        debug_assert!(
            !self.reg_dirty(reg) && !other.reg_dirty(reg),
            "stored-state comparison requires flushed check bits"
        );
        let regs = self.regs as usize;
        let r = usize::from(reg);
        (0..32).all(|lane| self.words[lane * regs + r] == other.words[lane * regs + r])
    }

    /// Attempt in-place correction of a stored word whose syndrome points at
    /// a single data bit, rewriting the register as a consistent codeword
    /// (data, re-encoded check bits and parity) and returning the corrected
    /// value.
    ///
    /// This is the [`swapcodes_ecc::swap::try_correct_data`] entry point of
    /// the recovery subsystem's `EccCorrect` policy. Under swapped codewords
    /// it restores the shadow's value, so it is only *sound* for
    /// original-side strikes — see the hazard note on that function. Returns
    /// `None` when the word is clean, uncorrectable, or unprotected.
    pub fn correct_in_place(&mut self, lane: u32, reg: u8) -> Option<u32> {
        let i = self.idx(lane, reg);
        let w = self.words[i];
        let word = SwappedWord {
            data: w.data,
            check: w.check,
        };
        let fixed = match &self.decoder {
            Decoder::None => None,
            Decoder::Detect(code) => swap::try_correct_data(code, word),
            Decoder::SecDedDp(rep) => swap::try_correct_data(rep.code(), word),
            Decoder::SecDp(rep) => swap::try_correct_data(rep.code(), word),
        }?;
        self.write_full(lane, reg, fixed);
        Some(fixed)
    }

    /// Inject a raw storage bit-flip (for storage-error testing).
    pub fn flip_storage_bit(&mut self, lane: u32, reg: u8, bit: u32) {
        self.touch(reg);
        if self.reg_dirty(reg) {
            // This write stores a deliberately inconsistent codeword (or is
            // about to corrupt one): restore the deferred lanes first so a
            // later flush cannot re-encode over the evidence.
            self.reencode_reg(reg);
        }
        let i = self.idx(lane, reg);
        match bit {
            0..=31 => self.words[i].data ^= 1 << bit,
            32..=47 => self.words[i].check ^= 1 << (bit - 32),
            _ => self.words[i].parity = !self.words[i].parity,
        }
        self.arm();
    }
}

/// A lazily cloned warp register file: resumed trials share the epoch
/// snapshot's file through an `Arc` until the first write materializes a
/// private copy. `Deref`/`DerefMut` make the wrapper transparent to the
/// executor — reads go through the shared base, while any `&mut` access
/// clones it first (and re-enables deferred encoding when the tier-2 engine
/// asked for it, since the captured base was flushed and un-deferred).
#[derive(Debug, Clone)]
pub enum CowRegFile {
    /// Still sharing the epoch snapshot's file.
    Shared {
        /// The captured golden-epoch register file.
        base: Arc<WarpRegFile>,
        /// Re-enable deferred check-bit encoding at materialization
        /// (tier-2 resume).
        defer_on_write: bool,
    },
    /// A private copy, materialized by the first write.
    Owned(Box<WarpRegFile>),
}

impl CowRegFile {
    /// Share `base` until the first write.
    #[must_use]
    pub fn shared(base: Arc<WarpRegFile>, defer_on_write: bool) -> Self {
        CowRegFile::Shared {
            base,
            defer_on_write,
        }
    }

    /// Wrap an already-private file (golden capture / clone-resume mode).
    #[must_use]
    pub fn owned(rf: WarpRegFile) -> Self {
        CowRegFile::Owned(Box::new(rf))
    }

    /// Whether a write has materialized a private copy.
    #[must_use]
    pub fn is_materialized(&self) -> bool {
        matches!(self, CowRegFile::Owned(_))
    }

    /// Force materialization (legacy clone-resume mode).
    pub fn materialize(&mut self) {
        let _ = self.deref_mut();
    }
}

impl Deref for CowRegFile {
    type Target = WarpRegFile;

    #[inline]
    fn deref(&self) -> &WarpRegFile {
        match self {
            CowRegFile::Shared { base, .. } => base,
            CowRegFile::Owned(rf) => rf,
        }
    }
}

impl DerefMut for CowRegFile {
    fn deref_mut(&mut self) -> &mut WarpRegFile {
        if let CowRegFile::Shared {
            base,
            defer_on_write,
        } = self
        {
            let mut rf = base.as_ref().clone();
            if *defer_on_write {
                rf.set_deferred(true);
            }
            *self = CowRegFile::Owned(Box::new(rf));
        }
        match self {
            CowRegFile::Owned(rf) => rf,
            CowRegFile::Shared { .. } => unreachable!("just materialized"),
        }
    }
}

fn convert(e: ReadEvent) -> RegFileEvent {
    match e {
        ReadEvent::Clean => RegFileEvent::Clean,
        ReadEvent::CorrectedData { .. }
        | ReadEvent::CorrectedCheck { .. }
        | ReadEvent::CorrectedParity => RegFileEvent::Corrected,
        ReadEvent::DuePipeline => RegFileEvent::Due {
            pipeline_suspected: true,
        },
        ReadEvent::DueStorage => RegFileEvent::Due {
            pipeline_suspected: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_swap_ecc_round_trip() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.write_full(0, 3, 0xDEAD_BEEF);
        rf.write_ecc_only(0, 3, 0xDEAD_BEEF); // error-free shadow
        let (v, e) = rf.read(0, 3);
        assert_eq!(v, 0xDEAD_BEEF);
        assert_eq!(e, RegFileEvent::Clean);
    }

    #[test]
    fn faulty_original_is_detected_on_read() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        // Original computed 41 (faulty), shadow computed 42 (golden).
        rf.write_split(2, 1, 41, 42);
        let (v, e) = rf.read(2, 1);
        assert_eq!(v, 41, "data must not be miscorrected");
        assert!(e.is_due());
    }

    #[test]
    fn faulty_shadow_is_detected_and_never_corrupts() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.write_full(0, 1, 42);
        rf.write_ecc_only(0, 1, 43); // shadow took the hit
        let (v, e) = rf.read(0, 1);
        assert_eq!(v, 42);
        assert!(e.is_due());
    }

    #[test]
    fn storage_error_corrected_under_dp() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.write_full(5, 2, 0x1234_5678);
        rf.flip_storage_bit(5, 2, 9);
        let (v, e) = rf.read(5, 2);
        assert_eq!(v, 0x1234_5678);
        assert_eq!(e, RegFileEvent::Corrected);
    }

    #[test]
    fn detect_only_residue_catches_original_strike() {
        let mut rf = WarpRegFile::new(8, Protection::DetectOnly(CodeKind::Residue { a: 7 }));
        rf.write_split(0, 0, 100, 101);
        let (_, e) = rf.read(0, 0);
        assert!(e.is_due());
    }

    #[test]
    fn predicted_write_detects_datapath_fault() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        // Datapath produced 7 (faulty); predictor derived check bits for 5.
        rf.write_predicted(1, 4, 7, 5);
        let (v, e) = rf.read(1, 4);
        assert_eq!(v, 7);
        assert!(e.is_due());
    }

    #[test]
    fn correct_in_place_recovers_original_strike() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.write_split(2, 1, 42 ^ (1 << 4), 42); // original struck one data bit
        assert_eq!(rf.correct_in_place(2, 1), Some(42));
        let (v, e) = rf.read(2, 1);
        assert_eq!(v, 42);
        assert_eq!(e, RegFileEvent::Clean, "corrected word is a codeword");
    }

    #[test]
    fn correct_in_place_miscorrects_shadow_strike() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.write_full(0, 1, 42);
        rf.write_ecc_only(0, 1, 43); // shadow struck
                                     // The hazard the DP rule exists to avoid: correction corrupts the
                                     // (already correct) data toward the shadow's faulty value.
        assert_eq!(rf.correct_in_place(0, 1), Some(43));
    }

    #[test]
    fn correct_in_place_refuses_clean_and_unprotected_words() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.write_full(0, 0, 7);
        assert_eq!(rf.correct_in_place(0, 0), None);
        let mut plain = WarpRegFile::new(8, Protection::None);
        plain.write_split(0, 0, 1, 2);
        assert_eq!(plain.correct_in_place(0, 0), None);
    }

    #[test]
    fn clone_snapshots_stored_state() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.write_full(3, 2, 0xAAAA_5555);
        let snap = rf.clone();
        rf.write_full(3, 2, 0);
        let restored = snap;
        let (v, e) = restored.read(3, 2);
        assert_eq!(v, 0xAAAA_5555);
        assert_eq!(e, RegFileEvent::Clean);
    }

    #[test]
    fn unprotected_file_sees_nothing() {
        let mut rf = WarpRegFile::new(8, Protection::None);
        rf.write_split(0, 0, 1, 2);
        let (v, e) = rf.read(0, 0);
        assert_eq!(v, 1);
        assert_eq!(e, RegFileEvent::Clean);
    }

    #[test]
    fn deferred_writes_flush_to_identical_codewords() {
        let mut eager = WarpRegFile::new(8, Protection::SecDedDp);
        let mut lazy = WarpRegFile::new(8, Protection::SecDedDp);
        lazy.set_deferred(true);
        for (reg, v) in [(0u8, 0xDEAD_BEEFu32), (3, 42), (7, u32::MAX)] {
            for lane in 0..32 {
                eager.write_full(lane, reg, v ^ lane);
                lazy.write_full(lane, reg, v ^ lane);
            }
        }
        assert!(lazy.has_deferred());
        lazy.flush_deferred();
        assert!(eager.stored_eq(&lazy));
    }

    #[test]
    fn shadow_compare_sees_through_deferred_check_bits() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.set_deferred(true);
        rf.write_full(0, 1, 42);
        rf.write_ecc_only(0, 1, 42); // clean shadow: must not arm
        let (v, e) = rf.read(0, 1);
        assert_eq!((v, e), (42, RegFileEvent::Clean));
        rf.write_full(0, 1, 42);
        rf.write_ecc_only(0, 1, 43); // faulty shadow: must still detect
        let (_, e) = rf.read(0, 1);
        assert!(e.is_due());
    }

    #[test]
    fn arming_flushes_and_disables_deferral() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.set_deferred(true);
        rf.write_full(0, 0, 5);
        rf.write_split(1, 2, 41, 42); // strike arms the file
        assert!(!rf.has_deferred(), "arming restores every codeword");
        let (v, e) = rf.read(0, 0);
        assert_eq!((v, e), (5, RegFileEvent::Clean), "deferred word re-encoded");
        rf.write_full(2, 3, 9); // post-arm writes are eager again
        assert!(!rf.has_deferred());
        let (_, e) = rf.read(1, 2);
        assert!(e.is_due());
    }

    #[test]
    fn split_write_over_deferred_register_keeps_its_evidence() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.set_deferred(true);
        rf.write_full(0, 4, 1); // reg 4 now holds stale check bits
        rf.write_split(0, 4, 41, 42); // then takes the strike
        let (v, e) = rf.read(0, 4);
        assert_eq!(v, 41);
        assert!(
            e.is_due(),
            "flush must not re-encode over the split codeword"
        );
    }

    #[test]
    fn set_deferred_is_refused_once_armed() {
        let mut rf = WarpRegFile::new(8, Protection::SecDedDp);
        rf.flip_storage_bit(0, 0, 3);
        rf.set_deferred(true);
        rf.write_full(0, 1, 6);
        assert!(!rf.has_deferred());
    }

    #[test]
    fn fast_path_stays_clean_until_armed() {
        let mut rf = WarpRegFile::new(4, Protection::SecDedDp);
        rf.write_full(0, 0, 7);
        let (_, e) = rf.read(0, 0);
        assert_eq!(e, RegFileEvent::Clean);
    }

    #[test]
    fn touched_bitmap_tracks_every_write_path() {
        let mut rf = WarpRegFile::new(70, Protection::SecDedDp);
        rf.write_full(0, 0, 1);
        rf.write_ecc_only(0, 1, 1);
        rf.write_predicted(0, 2, 3, 3);
        rf.write_split(0, 3, 4, 4);
        rf.flip_storage_bit(0, 69, 2);
        let bits = rf.take_touched();
        assert_eq!(bits[0], 0b1111);
        assert_eq!(bits[1], 1 << 5, "reg 69 lands in the second word");
        assert!(
            rf.touched_bits().iter().all(|&w| w == 0),
            "take_touched drains the tracker"
        );
        rf.write_full(1, 4, 9);
        assert_eq!(rf.touched_bits()[0], 1 << 4);
    }

    #[test]
    fn stored_eq_reg_isolates_single_register_differences() {
        let mut a = WarpRegFile::new(8, Protection::SecDedDp);
        let mut b = WarpRegFile::new(8, Protection::SecDedDp);
        a.write_full(5, 3, 0xFACE);
        b.write_full(5, 3, 0xFACE);
        b.write_full(7, 6, 1);
        assert!(a.stored_eq_reg(&b, 3));
        assert!(!a.stored_eq_reg(&b, 6));
    }

    #[test]
    fn cow_regfile_materializes_on_first_write_only() {
        let mut base = WarpRegFile::new(8, Protection::SecDedDp);
        base.write_full(0, 2, 42);
        base.take_touched();
        let base = Arc::new(base);
        let mut cow = CowRegFile::shared(Arc::clone(&base), false);
        assert_eq!(cow.read(0, 2), (42, RegFileEvent::Clean));
        assert_eq!(cow.peek(0, 2), 42);
        assert!(!cow.is_materialized(), "reads must not clone");
        cow.write_full(0, 2, 7);
        assert!(cow.is_materialized());
        assert_eq!(cow.peek(0, 2), 7);
        assert_eq!(base.peek(0, 2), 42, "the shared base is untouched");
        assert_eq!(cow.touched_bits()[0], 1 << 2, "private copy starts clean");
    }

    #[test]
    fn cow_regfile_rearms_deferred_encoding_at_materialization() {
        let base = Arc::new(WarpRegFile::new(8, Protection::SecDedDp));
        let mut cow = CowRegFile::shared(base, true);
        assert!(!cow.has_deferred());
        cow.write_full(0, 1, 5);
        assert!(
            cow.has_deferred(),
            "tier-2 resume defers check bits in the private copy"
        );
        cow.flush_deferred();
        let mut eager = WarpRegFile::new(8, Protection::SecDedDp);
        eager.write_full(0, 1, 5);
        assert!(cow.stored_eq(&eager));
    }
}
