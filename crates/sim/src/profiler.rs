//! Dynamic instruction classification and operand tracing — the simulator's
//! stand-in for the paper's SASSI-like binary instrumentation.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use swapcodes_isa::{Instr, Op, Role};

/// Raw dynamic warp-instruction counts by provenance, the inputs to the
/// Fig. 13 code-mix categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileCounts {
    /// Original instructions that are not duplication-eligible
    /// (loads/stores/atomics/control/predicates/shuffles).
    pub not_eligible: u64,
    /// Original duplication-eligible instructions whose check bits are
    /// hardware-predicted (including propagated moves).
    pub eligible_predicted: u64,
    /// Original duplication-eligible instructions without prediction.
    pub eligible_plain: u64,
    /// Shadow copies inserted by a duplication pass.
    pub shadow: u64,
    /// Explicit checking instructions (software duplication).
    pub checking: u64,
    /// Other compiler-inserted instructions (index fix-ups, syncs, NOPs).
    pub compiler_inserted: u64,
}

impl ProfileCounts {
    /// Record one executed warp-instruction.
    pub fn record(&mut self, instr: &Instr) {
        match instr.role {
            Role::Check => self.checking += 1,
            Role::CompilerInserted => self.compiler_inserted += 1,
            Role::Shadow => self.shadow += 1,
            Role::Original => {
                if !instr.op.is_dup_eligible() {
                    self.not_eligible += 1;
                } else if instr.predicted {
                    self.eligible_predicted += 1;
                } else {
                    self.eligible_plain += 1;
                }
            }
        }
    }

    /// Total dynamic warp-instructions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.not_eligible
            + self.eligible_predicted
            + self.eligible_plain
            + self.shadow
            + self.checking
            + self.compiler_inserted
    }

    /// Instructions the *original* (untransformed) program contributes: the
    /// denominator of the Fig. 13 bloat bars.
    #[must_use]
    pub fn original_program(&self) -> u64 {
        self.not_eligible + self.eligible_predicted + self.eligible_plain
    }

    /// Dynamic instruction bloat relative to the original program
    /// (1.0 = no overhead).
    #[must_use]
    pub fn bloat(&self) -> f64 {
        if self.original_program() == 0 {
            1.0
        } else {
            self.total() as f64 / self.original_program() as f64
        }
    }

    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &ProfileCounts) {
        self.not_eligible += other.not_eligible;
        self.eligible_predicted += other.eligible_predicted;
        self.eligible_plain += other.eligible_plain;
        self.shadow += other.shadow;
        self.checking += other.checking;
        self.compiler_inserted += other.compiler_inserted;
    }
}

/// Arithmetic unit classes traced for gate-level injection (the Fig. 10
/// units). Mirrors `swapcodes_gates::units::UnitKind` without depending on
/// that crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TracedUnit {
    FxpAdd32,
    FxpMad32,
    FpAdd32,
    FpFma32,
    FpAdd64,
    FpFma64,
}

impl TracedUnit {
    /// All traced units in Fig. 10 order.
    #[must_use]
    pub fn all() -> [TracedUnit; 6] {
        [
            TracedUnit::FxpAdd32,
            TracedUnit::FxpMad32,
            TracedUnit::FpAdd32,
            TracedUnit::FpFma32,
            TracedUnit::FpAdd64,
            TracedUnit::FpFma64,
        ]
    }
}

/// Map an operation to the arithmetic unit it exercises (with operand
/// normalisation: multiplies trace as MADs with a zero addend).
#[must_use]
pub fn traced_unit(op: &Op) -> Option<TracedUnit> {
    match op {
        Op::IAdd { .. } | Op::ISub { .. } => Some(TracedUnit::FxpAdd32),
        Op::IMul { .. } | Op::IMad { .. } | Op::IMadWide { .. } => Some(TracedUnit::FxpMad32),
        Op::FAdd { .. } => Some(TracedUnit::FpAdd32),
        Op::FMul { .. } | Op::FFma { .. } => Some(TracedUnit::FpFma32),
        Op::DAdd { .. } => Some(TracedUnit::FpAdd64),
        Op::DMul { .. } | Op::DFma { .. } => Some(TracedUnit::FpFma64),
        _ => None,
    }
}

/// Captured operand streams per arithmetic unit, for realistic gate-level
/// error injection (the paper traces Rodinia inputs the same way).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OperandTrace {
    streams: HashMap<TracedUnit, Vec<[u64; 3]>>,
    cap_per_unit: usize,
}

impl OperandTrace {
    /// Create a trace keeping at most `cap_per_unit` tuples per unit.
    #[must_use]
    pub fn with_cap(cap_per_unit: usize) -> Self {
        Self {
            streams: HashMap::new(),
            cap_per_unit,
        }
    }

    /// Record an operand tuple for `unit` (dropped beyond the cap).
    pub fn record(&mut self, unit: TracedUnit, operands: [u64; 3]) {
        let v = self.streams.entry(unit).or_default();
        if v.len() < self.cap_per_unit {
            v.push(operands);
        }
    }

    /// The captured tuples for `unit`.
    #[must_use]
    pub fn stream(&self, unit: TracedUnit) -> &[[u64; 3]] {
        self.streams.get(&unit).map_or(&[], Vec::as_slice)
    }

    /// Whether any unit reached its cap (useful to know tracing is "full").
    #[must_use]
    pub fn any_full(&self) -> bool {
        self.streams.values().any(|v| v.len() >= self.cap_per_unit)
    }

    /// Merge another trace (respecting the cap).
    pub fn merge(&mut self, other: &OperandTrace) {
        for (unit, tuples) in &other.streams {
            let v = self.streams.entry(*unit).or_default();
            for t in tuples {
                if v.len() >= self.cap_per_unit {
                    break;
                }
                v.push(*t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swapcodes_isa::{Reg, Src};

    #[test]
    fn profile_classification() {
        let mut p = ProfileCounts::default();
        let add = Op::IAdd {
            d: Reg(0),
            a: Reg(1),
            b: Src::Imm(1),
        };
        p.record(&Instr::new(add));
        p.record(&Instr::new(add).with_role(Role::Shadow));
        p.record(&Instr::new(add).with_predicted());
        p.record(&Instr::new(Op::Trap).with_role(Role::Check));
        p.record(&Instr::new(Op::Exit));
        assert_eq!(p.eligible_plain, 1);
        assert_eq!(p.shadow, 1);
        assert_eq!(p.eligible_predicted, 1);
        assert_eq!(p.checking, 1);
        assert_eq!(p.not_eligible, 1);
        assert_eq!(p.total(), 5);
        assert_eq!(p.original_program(), 3);
        assert!((p.bloat() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn operand_trace_caps() {
        let mut t = OperandTrace::with_cap(2);
        for i in 0..5 {
            t.record(TracedUnit::FpAdd32, [i, i, 0]);
        }
        assert_eq!(t.stream(TracedUnit::FpAdd32).len(), 2);
        assert!(t.any_full());
        assert!(t.stream(TracedUnit::FpFma64).is_empty());
    }

    #[test]
    fn unit_mapping() {
        assert_eq!(
            traced_unit(&Op::DFma {
                d: Reg(0),
                a: Reg(2),
                b: Reg(4),
                c: Reg(6)
            }),
            Some(TracedUnit::FpFma64)
        );
        assert_eq!(traced_unit(&Op::Exit), None);
    }
}
