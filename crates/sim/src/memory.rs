//! Global and shared memory (word-backed, byte-addressed).
//!
//! The memory subsystem lies outside the SwapCodes sphere of replication
//! (Fig. 1) — it is assumed protected by conventional storage ECC — so it is
//! modelled functionally, without error state.
//!
//! Injection trials resume from shared golden epoch snapshots, so both
//! memories also come in copy-on-write form: [`CowMemory`] overlays a
//! page-granular dirty set on an `Arc`'d base, and [`CowShared`] clones its
//! (small) base on the first write. A resumed trial materializes only the
//! bytes it actually touches — see `crate::snapshot` and DESIGN §14.

use std::sync::Arc;

/// Device global memory. Addresses are byte addresses; accesses must be
/// 4-byte aligned.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    words: Vec<u32>,
}

impl GlobalMemory {
    /// Allocate `bytes` of zeroed global memory (rounded up to words).
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        Self {
            words: vec![0; bytes.div_ceil(4)],
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len() * 4
    }

    /// Whether the memory has zero size.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read the 32-bit word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access.
    #[must_use]
    pub fn read(&self, addr: u32) -> u32 {
        self.words[Self::index(addr, self.words.len())]
    }

    /// Write the 32-bit word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access.
    pub fn write(&mut self, addr: u32, value: u32) {
        let i = Self::index(addr, self.words.len());
        self.words[i] = value;
    }

    /// Atomically add `value` to the word at `addr`, returning the old value.
    pub fn atomic_add(&mut self, addr: u32, value: u32) -> u32 {
        let i = Self::index(addr, self.words.len());
        let old = self.words[i];
        self.words[i] = old.wrapping_add(value);
        old
    }

    /// Checked read: `None` on misaligned or out-of-bounds access.
    #[must_use]
    pub fn try_read(&self, addr: u32) -> Option<u32> {
        self.checked_index(addr).map(|i| self.words[i])
    }

    /// Checked write: `false` on misaligned or out-of-bounds access.
    pub fn try_write(&mut self, addr: u32, value: u32) -> bool {
        if let Some(i) = self.checked_index(addr) {
            self.words[i] = value;
            true
        } else {
            false
        }
    }

    /// Checked atomic add: `None` on misaligned or out-of-bounds access.
    pub fn try_atomic_add(&mut self, addr: u32, value: u32) -> Option<u32> {
        let i = self.checked_index(addr)?;
        let old = self.words[i];
        self.words[i] = old.wrapping_add(value);
        Some(old)
    }

    fn checked_index(&self, addr: u32) -> Option<usize> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        let i = (addr / 4) as usize;
        (i < self.words.len()).then_some(i)
    }

    /// Copy a slice of f32 values to byte address `addr`.
    pub fn write_f32_slice(&mut self, addr: u32, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(addr + 4 * i as u32, v.to_bits());
        }
    }

    /// Copy a slice of u32 values to byte address `addr`.
    pub fn write_u32_slice(&mut self, addr: u32, data: &[u32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(addr + 4 * i as u32, v);
        }
    }

    /// Read `n` f32 values from byte address `addr`.
    #[must_use]
    pub fn read_f32_slice(&self, addr: u32, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| f32::from_bits(self.read(addr + 4 * i as u32)))
            .collect()
    }

    /// Read `n` u32 values from byte address `addr`.
    #[must_use]
    pub fn read_u32_slice(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read(addr + 4 * i as u32)).collect()
    }

    /// The raw backing words (for whole-memory comparisons).
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Rebuild a global memory from previously captured words (zero-copy:
    /// the vector is moved, not duplicated).
    #[must_use]
    pub fn from_words(words: Vec<u32>) -> Self {
        Self { words }
    }

    fn index(addr: u32, len: usize) -> usize {
        assert_eq!(addr % 4, 0, "unaligned access at {addr:#x}");
        let i = (addr / 4) as usize;
        assert!(i < len, "global memory access at {addr:#x} out of bounds");
        i
    }
}

/// Per-CTA shared memory (scratchpad).
#[derive(Debug, Clone)]
pub struct SharedMemory {
    words: Vec<u32>,
}

impl SharedMemory {
    /// Allocate `words` 32-bit words of zeroed shared memory.
    #[must_use]
    pub fn new(words: usize) -> Self {
        Self {
            words: vec![0; words],
        }
    }

    /// Read the word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access.
    #[must_use]
    pub fn read(&self, addr: u32) -> u32 {
        assert_eq!(addr % 4, 0, "unaligned shared access");
        self.words[(addr / 4) as usize]
    }

    /// Write the word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access.
    pub fn write(&mut self, addr: u32, value: u32) {
        assert_eq!(addr % 4, 0, "unaligned shared access");
        let i = (addr / 4) as usize;
        self.words[i] = value;
    }

    /// Checked read: `None` on misaligned or out-of-bounds access.
    #[must_use]
    pub fn try_read(&self, addr: u32) -> Option<u32> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        self.words.get((addr / 4) as usize).copied()
    }

    /// Checked write: `false` on misaligned or out-of-bounds access.
    pub fn try_write(&mut self, addr: u32, value: u32) -> bool {
        if !addr.is_multiple_of(4) {
            return false;
        }
        if let Some(w) = self.words.get_mut((addr / 4) as usize) {
            *w = value;
            true
        } else {
            false
        }
    }

    /// The raw backing words (for snapshots and whole-memory comparisons).
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Rebuild a shared memory from previously captured words (zero-copy:
    /// the vector is moved, not duplicated).
    #[must_use]
    pub fn from_words(words: Vec<u32>) -> Self {
        Self { words }
    }
}

/// Default copy-on-write page size in words (256 bytes). Overridable per
/// engine through `ExecConfig::cow_page_words` / `SWAPCODES_COW_PAGE_WORDS`.
pub const DEFAULT_COW_PAGE_WORDS: usize = 64;

/// Copy-on-write global memory: an `Arc`'d base image (a golden epoch
/// snapshot) overlaid with materialized pages. Reads fall through to the
/// base until a write materializes the containing page; the set of resident
/// pages is exactly the trial's dirty superset, which is what the
/// golden-convergence early-exit compares (DESIGN §14).
#[derive(Debug, Clone)]
pub struct CowMemory {
    base: Arc<Vec<u32>>,
    /// Materialized pages, indexed by page number (`None` = read the base).
    pages: Vec<Option<Box<[u32]>>>,
    /// One bit per page: set when the page is materialized.
    resident: Vec<u64>,
    page_words: usize,
    page_shift: u32,
    pages_cloned: u64,
}

impl CowMemory {
    /// Wrap `base` with an empty overlay. `page_words` is rounded up to a
    /// power of two (minimum 1).
    #[must_use]
    pub fn new(base: Arc<Vec<u32>>, page_words: usize) -> Self {
        let page_words = page_words.max(1).next_power_of_two();
        let page_count = base.len().div_ceil(page_words).max(1);
        Self {
            pages: (0..page_count).map(|_| None).collect(),
            resident: vec![0; page_count.div_ceil(64)],
            page_words,
            page_shift: page_words.trailing_zeros(),
            pages_cloned: 0,
            base,
        }
    }

    /// Size in bytes (identical to the base image).
    #[must_use]
    pub fn len(&self) -> usize {
        self.base.len() * 4
    }

    /// Whether the memory has zero size.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Number of copy-on-write pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Page size in words.
    #[must_use]
    pub fn page_words(&self) -> usize {
        self.page_words
    }

    /// Pages materialized by writes so far.
    #[must_use]
    pub fn pages_cloned(&self) -> u64 {
        self.pages_cloned
    }

    /// One bit per page: set when the page was materialized by a write —
    /// the trial's dirty-page superset.
    #[must_use]
    pub fn resident_bits(&self) -> &[u64] {
        &self.resident
    }

    #[inline]
    fn checked_index(&self, addr: u32) -> Option<usize> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        let i = (addr / 4) as usize;
        (i < self.base.len()).then_some(i)
    }

    #[inline]
    fn word(&self, i: usize) -> u32 {
        match &self.pages[i >> self.page_shift] {
            Some(pg) => pg[i & (self.page_words - 1)],
            None => self.base[i],
        }
    }

    /// Materialize the page containing word `i` and return the slot.
    fn page_mut(&mut self, i: usize) -> &mut u32 {
        let p = i >> self.page_shift;
        if self.pages[p].is_none() {
            let start = p << self.page_shift;
            let end = (start + self.page_words).min(self.base.len());
            self.pages[p] = Some(self.base[start..end].to_vec().into_boxed_slice());
            self.resident[p >> 6] |= 1 << (p & 63);
            self.pages_cloned += 1;
        }
        let pg = self.pages[p].as_mut().expect("page just materialized");
        &mut pg[i & (self.page_words - 1)]
    }

    /// Materialize every page upfront (the legacy clone-resume mode).
    pub fn materialize_all(&mut self) {
        for i in (0..self.base.len()).step_by(self.page_words) {
            let _ = self.page_mut(i);
        }
    }

    /// Read the 32-bit word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access.
    #[must_use]
    pub fn read(&self, addr: u32) -> u32 {
        assert_eq!(addr % 4, 0, "unaligned access at {addr:#x}");
        let i = (addr / 4) as usize;
        assert!(
            i < self.base.len(),
            "global memory access at {addr:#x} out of bounds"
        );
        self.word(i)
    }

    /// Checked read: `None` on misaligned or out-of-bounds access.
    #[inline]
    #[must_use]
    pub fn try_read(&self, addr: u32) -> Option<u32> {
        self.checked_index(addr).map(|i| self.word(i))
    }

    /// Checked write: `false` on misaligned or out-of-bounds access.
    #[inline]
    pub fn try_write(&mut self, addr: u32, value: u32) -> bool {
        if let Some(i) = self.checked_index(addr) {
            *self.page_mut(i) = value;
            true
        } else {
            false
        }
    }

    /// Checked atomic add: `None` on misaligned or out-of-bounds access.
    pub fn try_atomic_add(&mut self, addr: u32, value: u32) -> Option<u32> {
        let i = self.checked_index(addr)?;
        let w = self.page_mut(i);
        let old = *w;
        *w = old.wrapping_add(value);
        Some(old)
    }

    /// Read `n` u32 values from byte address `addr` (O(n), not O(total) —
    /// the campaign's output-region check must not flatten the overlay).
    #[must_use]
    pub fn read_u32_slice(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read(addr + 4 * i as u32)).collect()
    }

    /// Flatten the overlay into a plain word vector (O(total); tests and
    /// final-state consumers only — the trial hot path never calls this).
    #[must_use]
    pub fn words(&self) -> Vec<u32> {
        let mut out = self.base.as_ref().clone();
        for (p, page) in self.pages.iter().enumerate() {
            if let Some(pg) = page {
                let start = p << self.page_shift;
                out[start..start + pg.len()].copy_from_slice(pg);
            }
        }
        out
    }

    /// Flatten into an owned [`GlobalMemory`].
    #[must_use]
    pub fn to_global(&self) -> GlobalMemory {
        GlobalMemory::from_words(self.words())
    }

    /// Whether page `p` of this memory's view equals the same page of
    /// `golden` (a full flattened image of identical length).
    #[must_use]
    pub fn page_eq(&self, p: usize, golden: &[u32]) -> bool {
        let start = p << self.page_shift;
        let end = (start + self.page_words).min(self.base.len());
        match &self.pages[p] {
            Some(pg) => pg[..] == golden[start..end],
            None => self.base[start..end] == golden[start..end],
        }
    }

    /// Flatten the overlay into a fresh base and return it together with the
    /// dirty-page bitset of the interval since the last rebase. The overlay
    /// is cleared, so subsequent writes accumulate the next interval's dirty
    /// set — this is how the golden capture run derives per-epoch deltas.
    pub fn rebase(&mut self) -> (Arc<Vec<u32>>, Vec<u64>) {
        if self.pages_cloned == 0 {
            return (Arc::clone(&self.base), vec![0; self.resident.len()]);
        }
        let fresh = vec![0; self.resident.len()];
        let delta = std::mem::replace(&mut self.resident, fresh);
        self.base = Arc::new(self.words());
        for p in &mut self.pages {
            *p = None;
        }
        self.pages_cloned = 0;
        (Arc::clone(&self.base), delta)
    }
}

/// Copy-on-write shared memory: shared scratchpads are small (at most a few
/// KiB), so the overlay is whole-unit — the first write clones the base.
/// This also removes the resume-path double copy the eager
/// `SharedMemory::from_words(snap.shared.clone())` pattern used to pay.
#[derive(Debug, Clone)]
pub struct CowShared {
    base: Arc<Vec<u32>>,
    local: Option<Vec<u32>>,
}

impl CowShared {
    /// Allocate `words` 32-bit words of zeroed shared memory.
    #[must_use]
    pub fn new_zeroed(words: usize) -> Self {
        Self {
            base: Arc::new(vec![0; words]),
            local: None,
        }
    }

    /// Zero-copy resume constructor: share `base` until the first write.
    #[must_use]
    pub fn resume(base: Arc<Vec<u32>>) -> Self {
        Self { base, local: None }
    }

    /// Whether a write has materialized a private copy.
    #[must_use]
    pub fn is_materialized(&self) -> bool {
        self.local.is_some()
    }

    /// Materialize the private copy upfront (legacy clone-resume mode).
    pub fn materialize(&mut self) {
        if self.local.is_none() {
            self.local = Some(self.base.as_ref().clone());
        }
    }

    /// The current view of the words.
    #[must_use]
    pub fn words(&self) -> &[u32] {
        self.local.as_deref().unwrap_or(&self.base)
    }

    /// Checked read: `None` on misaligned or out-of-bounds access.
    #[inline]
    #[must_use]
    pub fn try_read(&self, addr: u32) -> Option<u32> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        self.words().get((addr / 4) as usize).copied()
    }

    /// Checked write: `false` on misaligned or out-of-bounds access.
    pub fn try_write(&mut self, addr: u32, value: u32) -> bool {
        if !addr.is_multiple_of(4) {
            return false;
        }
        let i = (addr / 4) as usize;
        if i >= self.base.len() {
            return false;
        }
        self.materialize();
        self.local.as_mut().expect("just materialized")[i] = value;
        true
    }

    /// Snapshot the current state as a fresh shared base, returning whether
    /// anything was written since the last rebase (the per-epoch
    /// shared-memory delta flag).
    pub fn rebase(&mut self) -> (Arc<Vec<u32>>, bool) {
        match self.local.take() {
            Some(words) => {
                self.base = Arc::new(words);
                (Arc::clone(&self.base), true)
            }
            None => (Arc::clone(&self.base), false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = GlobalMemory::new(64);
        m.write(0, 42);
        m.write(60, 0xFFFF_FFFF);
        assert_eq!(m.read(0), 42);
        assert_eq!(m.read(60), 0xFFFF_FFFF);
        assert_eq!(m.read(4), 0);
    }

    #[test]
    fn atomic_add_returns_old() {
        let mut m = GlobalMemory::new(8);
        assert_eq!(m.atomic_add(4, 10), 0);
        assert_eq!(m.atomic_add(4, 5), 10);
        assert_eq!(m.read(4), 15);
    }

    #[test]
    fn f32_slices() {
        let mut m = GlobalMemory::new(32);
        m.write_f32_slice(8, &[1.5, -2.25]);
        assert_eq!(m.read_f32_slice(8, 2), vec![1.5, -2.25]);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_panics() {
        let m = GlobalMemory::new(8);
        let _ = m.read(2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let m = GlobalMemory::new(8);
        let _ = m.read(8);
    }

    #[test]
    fn cow_memory_materializes_only_written_pages() {
        let base = Arc::new((0..256u32).collect::<Vec<_>>());
        let mut m = CowMemory::new(Arc::clone(&base), 16);
        assert_eq!(m.page_count(), 16);
        assert_eq!(m.try_read(4), Some(1), "reads fall through to the base");
        assert_eq!(m.pages_cloned(), 0);
        assert!(m.try_write(4, 999));
        assert!(m.try_write(8, 1000));
        assert_eq!(m.pages_cloned(), 1, "same page: one materialization");
        assert_eq!(m.try_atomic_add(64 * 4, 5), Some(64));
        assert_eq!(m.pages_cloned(), 2);
        assert_eq!(m.read(4), 999);
        assert_eq!(base[1], 1, "the shared base is untouched");
        let flat = m.words();
        assert_eq!(flat[1], 999);
        assert_eq!(flat[2], 1000);
        assert_eq!(flat[64], 69);
        assert_eq!(flat[3], 3, "unwritten words keep base values");
        assert_eq!(m.read_u32_slice(0, 4), vec![0, 999, 1000, 3]);
    }

    #[test]
    fn cow_memory_rejects_unaligned_and_oob() {
        let mut m = CowMemory::new(Arc::new(vec![0; 8]), 4);
        assert_eq!(m.try_read(2), None);
        assert_eq!(m.try_read(32), None);
        assert!(!m.try_write(33, 1));
        assert_eq!(m.try_atomic_add(6, 1), None);
        assert_eq!(m.pages_cloned(), 0);
    }

    #[test]
    fn cow_memory_rebase_reports_interval_dirty_pages() {
        let base = Arc::new(vec![7u32; 200]);
        let mut m = CowMemory::new(base, 16);
        // No writes: rebase reuses the same Arc and reports no dirty pages.
        let (b0, d0) = m.rebase();
        assert!(d0.iter().all(|&w| w == 0));
        assert!(Arc::ptr_eq(&b0, &m.rebase().0));

        assert!(m.try_write(0, 1)); // page 0
        assert!(m.try_write(16 * 4 * 3, 2)); // page 3
        let (b1, d1) = m.rebase();
        assert_eq!(d1[0], 0b1001);
        assert_eq!(b1[0], 1);
        assert_eq!(m.pages_cloned(), 0, "rebase clears the overlay");
        // Next interval sees only its own writes.
        assert!(m.try_write(16 * 4 * 5, 3)); // page 5
        let (_, d2) = m.rebase();
        assert_eq!(d2[0], 0b10_0000);
    }

    #[test]
    fn cow_memory_page_eq_sees_overlay_and_base() {
        let golden: Vec<u32> = (0..100).collect();
        let mut m = CowMemory::new(Arc::new(golden.clone()), 16);
        assert!((0..m.page_count()).all(|p| m.page_eq(p, &golden)));
        assert!(m.try_write(0, 42));
        assert!(!m.page_eq(0, &golden));
        assert!(m.try_write(0, 0)); // write the golden value back
        assert!(m.page_eq(0, &golden), "reconverged page compares equal");
        assert!(
            m.page_eq(6, &golden),
            "partial tail page compares in-bounds"
        );
    }

    #[test]
    fn cow_shared_clones_whole_unit_on_first_write() {
        let base = Arc::new(vec![5u32; 16]);
        let mut s = CowShared::resume(Arc::clone(&base));
        assert_eq!(s.try_read(8), Some(5));
        assert!(!s.is_materialized());
        assert!(s.try_write(8, 9));
        assert!(s.is_materialized());
        assert_eq!(s.try_read(8), Some(9));
        assert_eq!(base[2], 5);
        assert_eq!(s.try_read(5), None, "unaligned");
        assert!(!s.try_write(64, 1), "out of bounds");
        let (b, dirty) = s.rebase();
        assert!(dirty);
        assert_eq!((b[3], b[8 / 4]), (5, 9));
        let (_, dirty) = s.rebase();
        assert!(!dirty, "no writes since the last rebase");
    }
}
