//! Global and shared memory (word-backed, byte-addressed).
//!
//! The memory subsystem lies outside the SwapCodes sphere of replication
//! (Fig. 1) — it is assumed protected by conventional storage ECC — so it is
//! modelled functionally, without error state.

/// Device global memory. Addresses are byte addresses; accesses must be
/// 4-byte aligned.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    words: Vec<u32>,
}

impl GlobalMemory {
    /// Allocate `bytes` of zeroed global memory (rounded up to words).
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        Self {
            words: vec![0; bytes.div_ceil(4)],
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len() * 4
    }

    /// Whether the memory has zero size.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read the 32-bit word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access.
    #[must_use]
    pub fn read(&self, addr: u32) -> u32 {
        self.words[Self::index(addr, self.words.len())]
    }

    /// Write the 32-bit word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access.
    pub fn write(&mut self, addr: u32, value: u32) {
        let i = Self::index(addr, self.words.len());
        self.words[i] = value;
    }

    /// Atomically add `value` to the word at `addr`, returning the old value.
    pub fn atomic_add(&mut self, addr: u32, value: u32) -> u32 {
        let i = Self::index(addr, self.words.len());
        let old = self.words[i];
        self.words[i] = old.wrapping_add(value);
        old
    }

    /// Checked read: `None` on misaligned or out-of-bounds access.
    #[must_use]
    pub fn try_read(&self, addr: u32) -> Option<u32> {
        self.checked_index(addr).map(|i| self.words[i])
    }

    /// Checked write: `false` on misaligned or out-of-bounds access.
    pub fn try_write(&mut self, addr: u32, value: u32) -> bool {
        if let Some(i) = self.checked_index(addr) {
            self.words[i] = value;
            true
        } else {
            false
        }
    }

    /// Checked atomic add: `None` on misaligned or out-of-bounds access.
    pub fn try_atomic_add(&mut self, addr: u32, value: u32) -> Option<u32> {
        let i = self.checked_index(addr)?;
        let old = self.words[i];
        self.words[i] = old.wrapping_add(value);
        Some(old)
    }

    fn checked_index(&self, addr: u32) -> Option<usize> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        let i = (addr / 4) as usize;
        (i < self.words.len()).then_some(i)
    }

    /// Copy a slice of f32 values to byte address `addr`.
    pub fn write_f32_slice(&mut self, addr: u32, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(addr + 4 * i as u32, v.to_bits());
        }
    }

    /// Copy a slice of u32 values to byte address `addr`.
    pub fn write_u32_slice(&mut self, addr: u32, data: &[u32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(addr + 4 * i as u32, v);
        }
    }

    /// Read `n` f32 values from byte address `addr`.
    #[must_use]
    pub fn read_f32_slice(&self, addr: u32, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| f32::from_bits(self.read(addr + 4 * i as u32)))
            .collect()
    }

    /// Read `n` u32 values from byte address `addr`.
    #[must_use]
    pub fn read_u32_slice(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read(addr + 4 * i as u32)).collect()
    }

    /// The raw backing words (for whole-memory comparisons).
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    fn index(addr: u32, len: usize) -> usize {
        assert_eq!(addr % 4, 0, "unaligned access at {addr:#x}");
        let i = (addr / 4) as usize;
        assert!(i < len, "global memory access at {addr:#x} out of bounds");
        i
    }
}

/// Per-CTA shared memory (scratchpad).
#[derive(Debug, Clone)]
pub struct SharedMemory {
    words: Vec<u32>,
}

impl SharedMemory {
    /// Allocate `words` 32-bit words of zeroed shared memory.
    #[must_use]
    pub fn new(words: usize) -> Self {
        Self {
            words: vec![0; words],
        }
    }

    /// Read the word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access.
    #[must_use]
    pub fn read(&self, addr: u32) -> u32 {
        assert_eq!(addr % 4, 0, "unaligned shared access");
        self.words[(addr / 4) as usize]
    }

    /// Write the word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds access.
    pub fn write(&mut self, addr: u32, value: u32) {
        assert_eq!(addr % 4, 0, "unaligned shared access");
        let i = (addr / 4) as usize;
        self.words[i] = value;
    }

    /// Checked read: `None` on misaligned or out-of-bounds access.
    #[must_use]
    pub fn try_read(&self, addr: u32) -> Option<u32> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        self.words.get((addr / 4) as usize).copied()
    }

    /// Checked write: `false` on misaligned or out-of-bounds access.
    pub fn try_write(&mut self, addr: u32, value: u32) -> bool {
        if !addr.is_multiple_of(4) {
            return false;
        }
        if let Some(w) = self.words.get_mut((addr / 4) as usize) {
            *w = value;
            true
        } else {
            false
        }
    }

    /// The raw backing words (for snapshots and whole-memory comparisons).
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Rebuild a shared memory from previously captured words.
    #[must_use]
    pub fn from_words(words: Vec<u32>) -> Self {
        Self { words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = GlobalMemory::new(64);
        m.write(0, 42);
        m.write(60, 0xFFFF_FFFF);
        assert_eq!(m.read(0), 42);
        assert_eq!(m.read(60), 0xFFFF_FFFF);
        assert_eq!(m.read(4), 0);
    }

    #[test]
    fn atomic_add_returns_old() {
        let mut m = GlobalMemory::new(8);
        assert_eq!(m.atomic_add(4, 10), 0);
        assert_eq!(m.atomic_add(4, 5), 10);
        assert_eq!(m.read(4), 15);
    }

    #[test]
    fn f32_slices() {
        let mut m = GlobalMemory::new(32);
        m.write_f32_slice(8, &[1.5, -2.25]);
        assert_eq!(m.read_f32_slice(8, 2), vec![1.5, -2.25]);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_panics() {
        let m = GlobalMemory::new(8);
        let _ = m.read(2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let m = GlobalMemory::new(8);
        let _ = m.read(8);
    }
}
