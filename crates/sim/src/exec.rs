//! Functional SIMT execution with trace capture and fault injection.
//!
//! Warps execute in lockstep with divergence handled by PC-reconvergence:
//! each warp holds a set of `(pc, mask)` fragments and always steps the
//! fragment with the smallest PC, which reconverges structured control flow
//! at the earliest join point — serialising divergent paths exactly like a
//! hardware SIMT stack.

use serde::{Deserialize, Serialize};
use swapcodes_isa::{
    CmpOp, CmpTy, Instr, Kernel, MemSpace, MemWidth, Op, Reg, Role, ShflMode, SpecialReg, Src,
};

use crate::fault::{ControlTarget, FaultSpec, FaultTarget};
use crate::memory::{GlobalMemory, SharedMemory};
use crate::profiler::{traced_unit, OperandTrace, ProfileCounts};
use crate::recovery::{RecoverySpec, RecoveryStats};
use crate::regfile::{Protection, RegFileEvent, WarpRegFile};
use crate::snapshot::{Fragment, WarpSnapshot};
use crate::tier2::ExecTier;

/// Kernel launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Launch {
    /// Number of CTAs in the grid.
    pub ctas: u32,
    /// Threads per CTA (multiple of 32 recommended).
    pub threads_per_cta: u32,
    /// Shared memory words per CTA.
    pub shared_words: u32,
}

impl Launch {
    /// A 1-D launch with no shared memory.
    #[must_use]
    pub fn grid(ctas: u32, threads_per_cta: u32) -> Self {
        Self {
            ctas,
            threads_per_cta,
            shared_words: 0,
        }
    }

    /// Warps per CTA.
    #[must_use]
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta.div_ceil(32)
    }
}

/// Cooperative cancellation handle for long-running executions.
///
/// A clone shares the underlying flag: the campaign service hands one token
/// to every trial of a tenant campaign, and a `cancel()` from the control
/// plane stops each in-flight execution at its next issue boundary with
/// [`ExecError::Cancelled`]. Checks are relaxed atomic loads, performed only
/// when a token is armed, so the uncancellable hot path pays one branch.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether cancellation has been requested on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Register-file protection mode.
    pub protection: Protection,
    /// Optional transient fault to inject.
    pub fault: Option<FaultSpec>,
    /// Capture per-warp dynamic traces (needed by the timing model).
    pub collect_trace: bool,
    /// Capture the global issue log: the kernel PC of every dynamic
    /// warp-instruction, indexed by its global dynamic-issue number. Only
    /// meaningful on fault-free runs with recovery unarmed (rollback cannot
    /// truncate a global log); the ACE analyzer uses it to map a
    /// control-strike `eligible_index` back to the struck PC.
    pub collect_issue_log: bool,
    /// Capture arithmetic operand streams (for gate-level injection).
    pub trace_operands: bool,
    /// Cap on captured operand tuples per unit.
    pub operand_cap: usize,
    /// Soft cap on executed dynamic warp-instructions: the run stops and is
    /// flagged `truncated` (used to bound trace capture, mirroring the
    /// paper's "halt after 100,000 instructions").
    pub max_dynamic: u64,
    /// Hard step budget ("fuel"): exceeding it aborts the run with
    /// [`ExecError::Hang`] — the simulator's driver-watchdog timeout.
    /// Injection campaigns set this so a fault that corrupts a loop bound
    /// or branch predicate cannot spin the host forever.
    pub fuel: Option<u64>,
    /// Execute only the first `n` CTAs (e.g. one occupancy wave).
    pub cta_limit: Option<u32>,
    /// Arm in-executor recovery: periodic warp checkpoints with rollback and
    /// replay on detection, and (opt-in) in-place ECC storage correction.
    /// `None` (the default) leaves execution byte-for-byte identical to the
    /// unrecovered executor.
    pub recovery: Option<RecoverySpec>,
    /// Execution tier for the fast-forward campaign engine
    /// ([`crate::snapshot::CampaignEngine::capture_config`]): the tier-1
    /// predecoded interpreter or the tier-2 closure-compiled threaded code
    /// ([`crate::tier2`]). The reference executor itself always interprets
    /// the `Op` enum and ignores this field.
    pub tier: ExecTier,
    /// Cooperative cancellation: when armed, the executor polls the token
    /// at every issue boundary and aborts with [`ExecError::Cancelled`].
    /// `None` (the default) compiles down to one untaken branch per step.
    pub cancel: Option<CancelToken>,
    /// Copy-on-write page size in 32-bit words for the campaign engine's
    /// global-memory overlay ([`crate::snapshot::CampaignEngine`]); rounded
    /// up to a power of two at capture. The reference executor ignores it.
    pub cow_page_words: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            protection: Protection::None,
            fault: None,
            collect_trace: false,
            collect_issue_log: false,
            trace_operands: false,
            operand_cap: 10_000,
            max_dynamic: 80_000_000,
            fuel: None,
            cta_limit: None,
            recovery: None,
            tier: ExecTier::Tier1,
            cancel: None,
            cow_page_words: crate::memory::DEFAULT_COW_PAGE_WORDS,
        }
    }
}

/// One executed warp-instruction in a dynamic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Index of the instruction within the kernel.
    pub kidx: u32,
    /// Active lane mask.
    pub mask: u32,
    /// Memory transactions generated (128-byte segments for global
    /// accesses; serialised lane count for atomics).
    pub txns: u8,
}

/// The dynamic trace of one warp.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WarpTrace {
    /// CTA index.
    pub cta: u32,
    /// Warp index within the CTA.
    pub warp: u32,
    /// Executed instructions in order.
    pub entries: Vec<TraceEntry>,
}

/// How (and whether) an error was detected during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Detection {
    /// Nothing detected.
    None,
    /// A software-duplication checking trap fired.
    Trap {
        /// Dynamic warp-instruction index at which the trap hit.
        at: u64,
    },
    /// The register-file decoder raised a DUE on a read.
    Due {
        /// Dynamic warp-instruction index of the reading instruction.
        at: u64,
        /// Whether reporting attributed the error to the pipeline.
        pipeline_suspected: bool,
    },
    /// A misaligned or out-of-bounds memory access faulted (the simulator's
    /// analogue of a GPU memory-protection error — a detectable crash).
    MemFault {
        /// Dynamic warp-instruction index of the faulting access.
        at: u64,
    },
    /// A warp reached a barrier while divergent (possible only under fault
    /// injection): the hardware would hang and the driver watchdog would
    /// kill the kernel — a detectable crash.
    Hang {
        /// Dynamic warp-instruction index of the divergent barrier.
        at: u64,
    },
}

/// Why a (fueled) execution could not run to completion.
///
/// These are *host-side* structured errors — conditions under which the
/// simulator itself must give up — as opposed to [`Detection`], which models
/// what the simulated GPU's protection hardware observes. Injection
/// campaigns map these into outcome buckets (a hung kernel is a
/// timeout-detected DUE) instead of panicking or looping forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecError {
    /// The step budget ([`ExecConfig::fuel`]) was exhausted: the kernel is
    /// treated as hung and killed by the driver watchdog.
    Hang {
        /// Dynamic warp-instructions executed before the budget ran out.
        steps: u64,
    },
    /// A *fault-free* run accessed memory out of bounds or misaligned — a
    /// workload or transform bug surfaced structurally. (Under fault
    /// injection the same violation is modeled as a precise memory trap,
    /// [`Detection::MemFault`], not a host error.)
    OutOfBoundsAccess {
        /// Faulting byte address.
        addr: u32,
        /// Dynamic warp-instruction index of the faulting access.
        at: u64,
    },
    /// The kernel or launch is malformed (e.g. it cannot fit on the SM at
    /// all), so no execution is possible.
    InvalidOp {
        /// Human-readable reason.
        what: &'static str,
    },
    /// The executor's internal watchdog fired: live warps are blocked with
    /// no forward progress possible (scheduler deadlock).
    Trap {
        /// Dynamic warp-instruction index at which progress stopped.
        at: u64,
    },
    /// The run was stopped by an armed [`CancelToken`] (a tenant cancelled
    /// its campaign, or the service is draining for shutdown). The partial
    /// state is meaningless: callers must discard the trial, never tally it.
    Cancelled {
        /// Dynamic warp-instruction index at which the token was observed.
        at: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Hang { steps } => {
                write!(f, "hang: step budget exhausted after {steps} instructions")
            }
            Self::OutOfBoundsAccess { addr, at } => {
                write!(
                    f,
                    "out-of-bounds access at address {addr:#x} (instruction {at})"
                )
            }
            Self::InvalidOp { what } => write!(f, "invalid kernel/launch: {what}"),
            Self::Trap { at } => write!(f, "deadlock trap at instruction {at}"),
            Self::Cancelled { at } => write!(f, "cancelled at instruction {at}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a functional execution.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Detection result (kernel halts at the first trap/DUE).
    pub detection: Detection,
    /// Storage corrections performed by the DP reporting.
    pub corrected: u64,
    /// Executed dynamic warp-instructions.
    pub dynamic_instructions: u64,
    /// Whether `max_dynamic` truncated the run.
    pub truncated: bool,
    /// Per-warp traces (when requested).
    pub traces: Vec<WarpTrace>,
    /// Global issue log (when requested): `issue_log[i]` is the kernel PC
    /// of the `i`-th dynamically issued warp-instruction.
    pub issue_log: Vec<u32>,
    /// Dynamic code-mix counts.
    pub profile: ProfileCounts,
    /// Captured operand streams (when requested).
    pub operands: OperandTrace,
    /// Number of fault activations actually applied.
    pub faults_applied: u32,
    /// Recovery work performed in-executor (checkpoints, warp replays,
    /// in-place corrections). All-zero when recovery is unarmed.
    pub recovery: RecoveryStats,
}

/// Functional kernel executor.
#[derive(Debug, Default)]
pub struct Executor {
    /// Configuration for subsequent [`Executor::run`] calls.
    pub config: ExecConfig,
}

impl Executor {
    /// An executor with default (unprotected, untraced) configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `kernel` over `launch`, mutating `mem` in place.
    ///
    /// # Errors
    ///
    /// Returns a structured [`ExecError`] instead of panicking or looping
    /// forever: fuel exhaustion ([`ExecError::Hang`]), an out-of-bounds
    /// access on a fault-free run ([`ExecError::OutOfBoundsAccess`]), or a
    /// scheduler deadlock ([`ExecError::Trap`]). Under fault injection,
    /// memory violations surface as [`Detection::MemFault`] in the `Ok`
    /// outcome rather than as errors.
    pub fn run(
        &self,
        kernel: &Kernel,
        launch: Launch,
        mem: &mut GlobalMemory,
    ) -> Result<ExecOutcome, ExecError> {
        let regs = kernel.register_count().max(1);
        let mut r = Runner {
            kernel,
            launch,
            cfg: &self.config,
            mem,
            regs,
            detection: Detection::None,
            corrected: 0,
            dyn_count: 0,
            truncated: false,
            error: None,
            traces: Vec::new(),
            issue_log: Vec::new(),
            profile: ProfileCounts::default(),
            operands: OperandTrace::with_cap(self.config.operand_cap),
            faults_applied: 0,
            eligible_seen: 0,
            pending_due: None,
            rstats: RecoveryStats::default(),
            fuel_refund: 0,
            control_delivered: false,
        };
        r.run();
        if let Some(e) = r.error {
            return Err(e);
        }
        Ok(ExecOutcome {
            detection: r.detection,
            corrected: r.corrected,
            dynamic_instructions: r.dyn_count,
            truncated: r.truncated,
            traces: r.traces,
            issue_log: r.issue_log,
            profile: r.profile,
            operands: r.operands,
            faults_applied: r.faults_applied,
            recovery: r.rstats,
        })
    }
}

/// A recovery checkpoint: the shared architectural [`WarpSnapshot`] plus
/// the trace length, which lets rollback discard replayed entries, and the
/// barrier wait flag — a control fault can corrupt barrier state, and a
/// replay that resurrects the wrong wait state would deadlock the CTA.
#[derive(Clone)]
struct WarpCheckpoint {
    snap: WarpSnapshot,
    trace_len: usize,
    waiting_bar: bool,
}

struct Warp {
    cta: u32,
    wid: u32,
    frags: Vec<Fragment>,
    rf: WarpRegFile,
    preds: [u8; 32],
    waiting_bar: bool,
    trace: Vec<TraceEntry>,
    /// Last architectural snapshot (when recovery is armed).
    ckpt: Option<Box<WarpCheckpoint>>,
    /// Instructions this warp executed since its last checkpoint.
    since_ckpt: u64,
    /// State escaped the warp (store/atomic) since the last checkpoint:
    /// rollback would not undo it, so replay is illegal until the next
    /// checkpoint.
    dirty: bool,
    /// Rollbacks already spent on this warp (bounded retry).
    replays: u32,
}

impl Warp {
    fn done(&self) -> bool {
        self.frags.is_empty()
    }
}

struct Runner<'a> {
    kernel: &'a Kernel,
    launch: Launch,
    cfg: &'a ExecConfig,
    mem: &'a mut GlobalMemory,
    regs: u32,
    detection: Detection,
    corrected: u64,
    dyn_count: u64,
    truncated: bool,
    error: Option<ExecError>,
    traces: Vec<WarpTrace>,
    issue_log: Vec<u32>,
    profile: ProfileCounts,
    operands: OperandTrace,
    faults_applied: u32,
    eligible_seen: u64,
    pending_due: Option<bool>,
    rstats: RecoveryStats,
    /// Instructions discarded by rollbacks, refunded to the fuel budget so
    /// every replay attempt runs on a fresh budget.
    fuel_refund: u64,
    /// A control-state strike is one-shot: once delivered it never recurs,
    /// even across warp replays (the replayed instructions re-execute on
    /// already-corrupted control state, exactly like a transient strike
    /// whose eligible counter has moved past it).
    control_delivered: bool,
}

impl Runner<'_> {
    /// A memory violation: under fault injection this is the GPU's precise
    /// memory-protection trap (a detectable crash); on a fault-free run it
    /// is a workload bug and becomes a structured host error.
    fn mem_fault(&mut self, addr: u32) {
        if self.cfg.fault.is_some() {
            if self.detection == Detection::None {
                self.detection = Detection::MemFault { at: self.dyn_count };
            }
        } else if self.error.is_none() {
            self.error = Some(ExecError::OutOfBoundsAccess {
                addr,
                at: self.dyn_count,
            });
        }
    }

    fn halted(&self) -> bool {
        self.detection != Detection::None || self.truncated || self.error.is_some()
    }

    /// Attempt warp-level replay of a detection: roll `w` back to its last
    /// checkpoint and clear the detection so execution resumes from the
    /// snapshot. Legal only when recovery is armed, the warp has a
    /// checkpoint, nothing escaped the warp since it was taken, and the
    /// per-warp replay budget is not exhausted. The discarded instructions
    /// are refunded to the fuel budget.
    fn try_rollback(&mut self, w: &mut Warp) -> bool {
        let Some(spec) = self.cfg.recovery else {
            return false;
        };
        if w.dirty || w.replays >= spec.max_replays_per_warp {
            return false;
        }
        let Some(ck) = &w.ckpt else {
            return false;
        };
        w.frags = ck.snap.frags.clone();
        w.preds = ck.snap.preds;
        w.rf = ck.snap.rf.clone();
        w.trace.truncate(ck.trace_len);
        w.waiting_bar = ck.waiting_bar;
        w.replays += 1;
        self.rstats.replays += 1;
        self.rstats.replayed_instructions += w.since_ckpt;
        self.fuel_refund = self.fuel_refund.saturating_add(w.since_ckpt);
        w.since_ckpt = 0;
        self.detection = Detection::None;
        self.pending_due = None;
        true
    }

    fn run(&mut self) {
        let ctas = self
            .cfg
            .cta_limit
            .map_or(self.launch.ctas, |l| l.min(self.launch.ctas));
        'grid: for cta in 0..ctas {
            let mut shared = SharedMemory::new(self.launch.shared_words as usize);
            let mut warps: Vec<Warp> = (0..self.launch.warps_per_cta())
                .map(|wid| {
                    let threads = self.launch.threads_per_cta;
                    let first = wid * 32;
                    let count = threads.saturating_sub(first).min(32);
                    let mask = if count >= 32 {
                        u32::MAX
                    } else {
                        (1u32 << count) - 1
                    };
                    Warp {
                        cta,
                        wid,
                        frags: vec![Fragment { pc: 0, mask }],
                        rf: WarpRegFile::new(self.regs, self.cfg.protection),
                        preds: [0; 32],
                        waiting_bar: false,
                        trace: Vec::new(),
                        ckpt: None,
                        since_ckpt: 0,
                        dirty: false,
                        replays: 0,
                    }
                })
                .collect();

            loop {
                let mut progressed = false;
                for w in &mut warps {
                    if w.done() || w.waiting_bar {
                        continue;
                    }
                    // A quantum of instructions before rotating warps.
                    for _ in 0..64 {
                        if w.done() || w.waiting_bar {
                            break;
                        }
                        step(self, w, &mut shared);
                        progressed = true;
                        if self.detection != Detection::None
                            && !self.truncated
                            && self.error.is_none()
                            && self.try_rollback(w)
                        {
                            continue;
                        }
                        if self.halted() {
                            break 'grid;
                        }
                    }
                }
                // Barrier release: all live warps waiting.
                let live: Vec<&mut Warp> = warps.iter_mut().filter(|w| !w.done()).collect();
                if !live.is_empty() && live.iter().all(|w| w.waiting_bar) {
                    let recovering = self.cfg.recovery.is_some();
                    for w in live {
                        w.waiting_bar = false;
                        // Re-checkpoint at the barrier release: other warps
                        // now assume this warp reached the barrier, so any
                        // rollback past it would deadlock the CTA.
                        if recovering {
                            checkpoint(&mut self.rstats, w);
                        }
                    }
                    progressed = true;
                }
                if warps.iter().all(Warp::done) {
                    break;
                }
                if !progressed {
                    // Live warps blocked with no release possible: the
                    // internal watchdog turns the deadlock into an error
                    // instead of asserting the host process away.
                    self.error = Some(ExecError::Trap { at: self.dyn_count });
                    break 'grid;
                }
            }

            if self.cfg.collect_trace {
                for w in warps {
                    self.traces.push(WarpTrace {
                        cta: w.cta,
                        warp: w.wid,
                        entries: w.trace,
                    });
                }
            }
        }
    }
}

/// Snapshot `w`'s architectural state. Also resets the dirty flag: stores
/// before this point are no longer at risk of re-execution, so rollback to
/// *this* checkpoint is legal again.
fn checkpoint(rstats: &mut RecoveryStats, w: &mut Warp) {
    w.ckpt = Some(Box::new(WarpCheckpoint {
        snap: WarpSnapshot {
            frags: w.frags.clone(),
            preds: w.preds,
            rf: w.rf.clone(),
        },
        trace_len: w.trace.len(),
        waiting_bar: w.waiting_bar,
    }));
    w.since_ckpt = 0;
    w.dirty = false;
    rstats.checkpoints += 1;
}

/// Execute one instruction of one warp.
#[allow(clippy::too_many_lines)]
fn step(r: &mut Runner<'_>, w: &mut Warp, shared: &mut SharedMemory) {
    if let Some(spec) = r.cfg.recovery {
        if w.ckpt.is_none() || w.since_ckpt >= spec.checkpoint_interval {
            checkpoint(&mut r.rstats, w);
        }
    }
    // Pick the fragment with the smallest PC.
    let fi = w
        .frags
        .iter()
        .enumerate()
        .min_by_key(|(_, f)| f.pc)
        .map(|(i, _)| i)
        .expect("stepping a finished warp");
    let pc = w.frags[fi].pc;
    if pc >= r.kernel.len() {
        w.frags.remove(fi);
        return;
    }
    let instr = r.kernel.instrs()[pc];

    // Control-state strike: delivered to the warp issuing global dynamic
    // instruction `eligible_index`, before guard evaluation (a predicate
    // strike misguards the very instruction it lands on). State-only
    // targets corrupt the warp's control state and abort the issue — the
    // fetched instruction is lost, the next fetch sees corrupted state —
    // without advancing the dynamic counter, so delivery points line up
    // across execution engines.
    if let Some(f) = r.cfg.fault {
        if let Some(ct) = f.control_target() {
            if !r.control_delivered && r.dyn_count >= f.eligible_index {
                r.control_delivered = true;
                r.faults_applied += 1;
                match ct {
                    ControlTarget::Predicate => {
                        w.preds[f.lane as usize] ^= f.xor_mask as u8;
                    }
                    ControlTarget::ActiveMask => {
                        w.frags[fi].mask ^= f.xor_mask as u32;
                        if w.frags[fi].mask == 0 {
                            w.frags.remove(fi);
                        }
                        return;
                    }
                    ControlTarget::Barrier => {
                        w.waiting_bar = !w.waiting_bar;
                        return;
                    }
                    ControlTarget::SchedulerSlot => {
                        w.frags[fi].pc ^= f.xor_mask as usize;
                        return;
                    }
                }
            }
        }
    }
    let frag_mask = w.frags[fi].mask;

    // Guard evaluation.
    let mut exec_mask = 0u32;
    for lane in 0..32u32 {
        if frag_mask & (1 << lane) == 0 {
            continue;
        }
        let pass = match instr.guard {
            None => true,
            Some((p, pol)) => {
                let bit = p.is_true() || w.preds[lane as usize] & (1 << p.0) != 0;
                bit == pol
            }
        };
        if pass {
            exec_mask |= 1 << lane;
        }
    }

    if r.cfg.collect_issue_log {
        r.issue_log.push(pc as u32);
    }
    r.dyn_count += 1;
    w.since_ckpt += 1;
    if r.dyn_count >= r.cfg.max_dynamic {
        r.truncated = true;
    }
    if let Some(fuel) = r.cfg.fuel {
        // Instructions discarded by rollbacks are refunded so every replay
        // attempt gets the full budget rather than a half-spent one.
        if r.dyn_count > fuel.saturating_add(r.fuel_refund) {
            // Budget exhausted: the kernel is hung (driver-watchdog kill).
            r.error = Some(ExecError::Hang { steps: r.dyn_count });
            return;
        }
    }
    if let Some(token) = &r.cfg.cancel {
        if token.is_cancelled() {
            r.error = Some(ExecError::Cancelled { at: r.dyn_count });
            return;
        }
    }
    r.profile.record(&instr);

    // Fault targeting: count eligible instructions by duplication side.
    let mut inject: Option<FaultSpec> = None;
    if let Some(f) = r.cfg.fault {
        if instr.op.is_dup_eligible() {
            let shadow_like = instr.ecc_only || instr.role == Role::Shadow;
            let matches = match f.target {
                FaultTarget::Original => !shadow_like,
                FaultTarget::Shadow => shadow_like,
            };
            if matches {
                if f.fires_at(r.eligible_seen) {
                    inject = Some(f);
                }
                r.eligible_seen += 1;
            }
        }
    }

    let mut txns = 0u8;
    exec_op(r, w, shared, &instr, fi, exec_mask, inject, &mut txns);

    if r.cfg.collect_trace {
        w.trace.push(TraceEntry {
            kidx: pc as u32,
            mask: exec_mask,
            txns,
        });
    }

    // Register-file events observed during this instruction.
    if let Some(pipeline_suspected) = r.pending_due.take() {
        r.detection = Detection::Due {
            at: r.dyn_count,
            pipeline_suspected,
        };
    }

    // Merge fragments that reconverged and drop empty ones.
    w.frags.retain(|f| f.mask != 0);
    w.frags.sort_by_key(|f| f.pc);
    let mut merged: Vec<Fragment> = Vec::with_capacity(w.frags.len());
    for f in w.frags.drain(..) {
        if let Some(last) = merged.last_mut() {
            if last.pc == f.pc {
                last.mask |= f.mask;
                continue;
            }
        }
        merged.push(f);
    }
    w.frags = merged;
}

/// Read a register for one lane, recording decode events.
fn rd(r: &mut Runner<'_>, w: &mut Warp, lane: u32, reg: Reg) -> u32 {
    if reg.is_zero() {
        return 0;
    }
    let (v, e) = w.rf.read(lane, reg.0);
    match e {
        RegFileEvent::Clean => {}
        RegFileEvent::Corrected => r.corrected += 1,
        RegFileEvent::Due { pipeline_suspected } => {
            // Opt-in storage correction: rewrite a single-data-bit syndrome
            // in place and keep running instead of halting. Under swapped
            // codewords this is a *policy gamble* — it restores the shadow's
            // value, which miscorrects shadow-side strikes — so the default
            // leaves it off and campaigns measure its miscorrection rate.
            if r.cfg.recovery.is_some_and(|s| s.storage_correction) {
                if let Some(fixed) = w.rf.correct_in_place(lane, reg.0) {
                    r.rstats.corrections += 1;
                    return fixed;
                }
            }
            r.pending_due.get_or_insert(pipeline_suspected);
        }
    }
    v
}

fn rd64(r: &mut Runner<'_>, w: &mut Warp, lane: u32, reg: Reg) -> u64 {
    if reg.is_zero() {
        return 0;
    }
    let lo = rd(r, w, lane, reg);
    let hi = rd(r, w, lane, reg.pair_hi());
    u64::from(hi) << 32 | u64::from(lo)
}

fn rsrc(r: &mut Runner<'_>, w: &mut Warp, lane: u32, s: Src) -> u32 {
    match s {
        Src::Reg(reg) => rd(r, w, lane, reg),
        Src::Imm(i) => i as u32,
    }
}

/// Write a (possibly faulted) result through the protection-aware paths.
fn write_result(w: &mut Warp, instr: &Instr, lane: u32, d: Reg, value: u32, golden: u32) {
    if d.is_zero() {
        return;
    }
    if instr.ecc_only {
        w.rf.write_ecc_only(lane, d.0, value);
    } else if instr.predicted {
        // Check bits come from the prediction pipeline (fault-free inputs).
        w.rf.write_predicted(lane, d.0, value, golden);
    } else {
        w.rf.write_full(lane, d.0, value);
    }
}

fn write_result64(w: &mut Warp, instr: &Instr, lane: u32, d: Reg, value: u64, golden: u64) {
    write_result(w, instr, lane, d, value as u32, golden as u32);
    write_result(
        w,
        instr,
        lane,
        d.pair_hi(),
        (value >> 32) as u32,
        (golden >> 32) as u32,
    );
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn exec_op(
    r: &mut Runner<'_>,
    w: &mut Warp,
    shared: &mut SharedMemory,
    instr: &Instr,
    fi: usize,
    exec_mask: u32,
    inject: Option<FaultSpec>,
    txns: &mut u8,
) {
    let op = instr.op;
    let f32b = f32::from_bits;
    let lanes = (0..32u32).filter(|l| exec_mask & (1 << l) != 0);

    // Arithmetic with a 32-bit result.
    let simple32 = |r: &mut Runner<'_>,
                    w: &mut Warp,
                    d: Reg,
                    f: &dyn Fn(&mut Runner<'_>, &mut Warp, u32) -> u32| {
        for lane in 0..32u32 {
            if exec_mask & (1 << lane) == 0 {
                continue;
            }
            let golden = f(r, w, lane);
            let mut value = golden;
            if let Some(fs) = inject {
                if fs.lane == lane {
                    value = fs.apply32(value);
                    r.faults_applied += 1;
                }
            }
            write_result(w, instr, lane, d, value, golden);
        }
    };

    match op {
        Op::Nop | Op::Bar => {
            if matches!(op, Op::Bar) {
                if w.frags.len() > 1 {
                    // A fault steered some lanes away from this barrier; the
                    // watchdog turns the resulting hang into a crash.
                    if r.detection == Detection::None {
                        r.detection = Detection::Hang { at: r.dyn_count };
                    }
                }
                w.waiting_bar = true;
            }
            w.frags[fi].pc += 1;
        }
        Op::Exit => {
            w.frags[fi].mask &= !exec_mask;
            w.frags[fi].pc += 1;
        }
        Op::Trap => {
            if exec_mask != 0 {
                r.detection = Detection::Trap { at: r.dyn_count };
            }
            w.frags[fi].pc += 1;
        }
        Op::Bra { target } => {
            let not_taken = w.frags[fi].mask & !exec_mask;
            let fall_pc = w.frags[fi].pc + 1;
            if exec_mask != 0 {
                w.frags[fi].mask = exec_mask;
                w.frags[fi].pc = target;
                if not_taken != 0 {
                    w.frags.push(Fragment {
                        pc: fall_pc,
                        mask: not_taken,
                    });
                }
            } else {
                w.frags[fi].pc = fall_pc;
            }
        }
        Op::S2R { d, sr } => {
            for lane in lanes {
                let golden = match sr {
                    SpecialReg::TidX => w.wid * 32 + lane,
                    SpecialReg::NTidX => r.launch.threads_per_cta,
                    SpecialReg::CtaIdX => w.cta,
                    SpecialReg::NCtaIdX => r.launch.ctas,
                    SpecialReg::LaneId => lane,
                    SpecialReg::WarpId => w.wid,
                };
                let mut value = golden;
                if let Some(fs) = inject {
                    if fs.lane == lane {
                        value = fs.apply32(value);
                        r.faults_applied += 1;
                    }
                }
                write_result(w, instr, lane, d, value, golden);
            }
            w.frags[fi].pc += 1;
        }
        Op::Mov { d, a } => {
            simple32(r, w, d, &|r, w, lane| rsrc(r, w, lane, a));
            w.frags[fi].pc += 1;
        }
        Op::IAdd { d, a, b } => {
            trace_ops2(r, w, exec_mask, &op, a, b);
            simple32(r, w, d, &|r, w, lane| {
                rd(r, w, lane, a).wrapping_add(rsrc(r, w, lane, b))
            });
            w.frags[fi].pc += 1;
        }
        Op::ISub { d, a, b } => {
            trace_ops2(r, w, exec_mask, &op, a, b);
            simple32(r, w, d, &|r, w, lane| {
                rd(r, w, lane, a).wrapping_sub(rsrc(r, w, lane, b))
            });
            w.frags[fi].pc += 1;
        }
        Op::IMul { d, a, b } => {
            trace_ops2(r, w, exec_mask, &op, a, b);
            simple32(r, w, d, &|r, w, lane| {
                rd(r, w, lane, a).wrapping_mul(rsrc(r, w, lane, b))
            });
            w.frags[fi].pc += 1;
        }
        Op::IMad { d, a, b, c } => {
            simple32(r, w, d, &|r, w, lane| {
                rd(r, w, lane, a)
                    .wrapping_mul(rd(r, w, lane, b))
                    .wrapping_add(rd(r, w, lane, c))
            });
            w.frags[fi].pc += 1;
        }
        Op::IMadWide { d, a, b, c } => {
            for lane in lanes {
                let av = rd(r, w, lane, a);
                let bv = rd(r, w, lane, b);
                let cv = rd64(r, w, lane, c);
                if r.cfg.trace_operands && instr.role == Role::Original {
                    if let Some(u) = traced_unit(&op) {
                        r.operands.record(u, [u64::from(av), u64::from(bv), cv]);
                    }
                }
                let golden = u64::from(av).wrapping_mul(u64::from(bv)).wrapping_add(cv);
                let mut value = golden;
                if let Some(fs) = inject {
                    if fs.lane == lane {
                        value = fs.apply64(value);
                        r.faults_applied += 1;
                    }
                }
                write_result64(w, instr, lane, d, value, golden);
            }
            w.frags[fi].pc += 1;
        }
        Op::IMin { d, a, b } => {
            simple32(r, w, d, &|r, w, lane| {
                let x = rd(r, w, lane, a) as i32;
                let y = rsrc(r, w, lane, b) as i32;
                x.min(y) as u32
            });
            w.frags[fi].pc += 1;
        }
        Op::IMax { d, a, b } => {
            simple32(r, w, d, &|r, w, lane| {
                let x = rd(r, w, lane, a) as i32;
                let y = rsrc(r, w, lane, b) as i32;
                x.max(y) as u32
            });
            w.frags[fi].pc += 1;
        }
        Op::Shl { d, a, b } => {
            simple32(r, w, d, &|r, w, lane| {
                let sh = rsrc(r, w, lane, b) & 31;
                rd(r, w, lane, a) << sh
            });
            w.frags[fi].pc += 1;
        }
        Op::Shr { d, a, b } => {
            simple32(r, w, d, &|r, w, lane| {
                let sh = rsrc(r, w, lane, b) & 31;
                rd(r, w, lane, a) >> sh
            });
            w.frags[fi].pc += 1;
        }
        Op::And { d, a, b } => {
            simple32(r, w, d, &|r, w, lane| {
                rd(r, w, lane, a) & rsrc(r, w, lane, b)
            });
            w.frags[fi].pc += 1;
        }
        Op::Or { d, a, b } => {
            simple32(r, w, d, &|r, w, lane| {
                rd(r, w, lane, a) | rsrc(r, w, lane, b)
            });
            w.frags[fi].pc += 1;
        }
        Op::Xor { d, a, b } => {
            simple32(r, w, d, &|r, w, lane| {
                rd(r, w, lane, a) ^ rsrc(r, w, lane, b)
            });
            w.frags[fi].pc += 1;
        }
        Op::Not { d, a } => {
            simple32(r, w, d, &|r, w, lane| !rd(r, w, lane, a));
            w.frags[fi].pc += 1;
        }
        Op::FAdd { d, a, b } => {
            trace_ops2(r, w, exec_mask, &op, a, b);
            simple32(r, w, d, &|r, w, lane| {
                (f32b(rd(r, w, lane, a)) + f32b(rsrc(r, w, lane, b))).to_bits()
            });
            w.frags[fi].pc += 1;
        }
        Op::FMul { d, a, b } => {
            trace_ops2(r, w, exec_mask, &op, a, b);
            simple32(r, w, d, &|r, w, lane| {
                (f32b(rd(r, w, lane, a)) * f32b(rsrc(r, w, lane, b))).to_bits()
            });
            w.frags[fi].pc += 1;
        }
        Op::FFma { d, a, b, c } => {
            for lane in 0..32u32 {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let av = rd(r, w, lane, a);
                let bv = rd(r, w, lane, b);
                let cv = rd(r, w, lane, c);
                if r.cfg.trace_operands && instr.role == Role::Original {
                    if let Some(u) = traced_unit(&op) {
                        r.operands
                            .record(u, [u64::from(av), u64::from(bv), u64::from(cv)]);
                    }
                }
                let golden = f32b(av).mul_add(f32b(bv), f32b(cv)).to_bits();
                let mut value = golden;
                if let Some(fs) = inject {
                    if fs.lane == lane {
                        value = fs.apply32(value);
                        r.faults_applied += 1;
                    }
                }
                write_result(w, instr, lane, d, value, golden);
            }
            w.frags[fi].pc += 1;
        }
        Op::FMin { d, a, b } => {
            simple32(r, w, d, &|r, w, lane| {
                f32b(rd(r, w, lane, a))
                    .min(f32b(rsrc(r, w, lane, b)))
                    .to_bits()
            });
            w.frags[fi].pc += 1;
        }
        Op::FMax { d, a, b } => {
            simple32(r, w, d, &|r, w, lane| {
                f32b(rd(r, w, lane, a))
                    .max(f32b(rsrc(r, w, lane, b)))
                    .to_bits()
            });
            w.frags[fi].pc += 1;
        }
        Op::MufuRcp { d, a } => {
            simple32(r, w, d, &|r, w, lane| {
                (1.0 / f32b(rd(r, w, lane, a))).to_bits()
            });
            w.frags[fi].pc += 1;
        }
        Op::MufuSqrt { d, a } => {
            simple32(r, w, d, &|r, w, lane| {
                f32b(rd(r, w, lane, a)).sqrt().to_bits()
            });
            w.frags[fi].pc += 1;
        }
        Op::MufuEx2 { d, a } => {
            simple32(r, w, d, &|r, w, lane| {
                f32b(rd(r, w, lane, a)).exp2().to_bits()
            });
            w.frags[fi].pc += 1;
        }
        Op::MufuLg2 { d, a } => {
            simple32(r, w, d, &|r, w, lane| {
                f32b(rd(r, w, lane, a)).log2().to_bits()
            });
            w.frags[fi].pc += 1;
        }
        Op::I2F { d, a } => {
            simple32(r, w, d, &|r, w, lane| {
                (rd(r, w, lane, a) as i32 as f32).to_bits()
            });
            w.frags[fi].pc += 1;
        }
        Op::F2I { d, a } => {
            simple32(r, w, d, &|r, w, lane| f32b(rd(r, w, lane, a)) as i32 as u32);
            w.frags[fi].pc += 1;
        }
        Op::DAdd { d, a, b } | Op::DMul { d, a, b } => {
            for lane in 0..32u32 {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let av = rd64(r, w, lane, a);
                let bv = rd64(r, w, lane, b);
                if r.cfg.trace_operands && instr.role == Role::Original {
                    if let Some(u) = traced_unit(&op) {
                        r.operands.record(u, [av, bv, 0]);
                    }
                }
                let fa = f64::from_bits(av);
                let fb = f64::from_bits(bv);
                let golden = match op {
                    Op::DAdd { .. } => (fa + fb).to_bits(),
                    _ => (fa * fb).to_bits(),
                };
                let mut value = golden;
                if let Some(fs) = inject {
                    if fs.lane == lane {
                        value = fs.apply64(value);
                        r.faults_applied += 1;
                    }
                }
                write_result64(w, instr, lane, d, value, golden);
            }
            w.frags[fi].pc += 1;
        }
        Op::DFma { d, a, b, c } => {
            for lane in 0..32u32 {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let av = rd64(r, w, lane, a);
                let bv = rd64(r, w, lane, b);
                let cv = rd64(r, w, lane, c);
                if r.cfg.trace_operands && instr.role == Role::Original {
                    if let Some(u) = traced_unit(&op) {
                        r.operands.record(u, [av, bv, cv]);
                    }
                }
                let golden = f64::from_bits(av)
                    .mul_add(f64::from_bits(bv), f64::from_bits(cv))
                    .to_bits();
                let mut value = golden;
                if let Some(fs) = inject {
                    if fs.lane == lane {
                        value = fs.apply64(value);
                        r.faults_applied += 1;
                    }
                }
                write_result64(w, instr, lane, d, value, golden);
            }
            w.frags[fi].pc += 1;
        }
        Op::SetP { p, cmp, ty, a, b } => {
            for lane in 0..32u32 {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let x = rd(r, w, lane, a);
                let y = rsrc(r, w, lane, b);
                let res = compare(cmp, ty, x, y);
                if p.is_true() {
                    continue; // PT is immutable
                }
                if res {
                    w.preds[lane as usize] |= 1 << p.0;
                } else {
                    w.preds[lane as usize] &= !(1 << p.0);
                }
            }
            w.frags[fi].pc += 1;
        }
        Op::Sel { d, p, a, b } => {
            simple32(r, w, d, &|r, w, lane| {
                let bit = p.is_true() || w.preds[lane as usize] & (1 << p.0) != 0;
                if bit {
                    rd(r, w, lane, a)
                } else {
                    rsrc(r, w, lane, b)
                }
            });
            w.frags[fi].pc += 1;
        }
        Op::Ld {
            d,
            space,
            addr,
            offset,
            width,
        } => {
            let mut segments: Vec<u32> = Vec::new();
            for lane in 0..32u32 {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let base = rd(r, w, lane, addr).wrapping_add(offset as u32);
                if space == MemSpace::Global {
                    let seg = base >> 7;
                    if !segments.contains(&seg) {
                        segments.push(seg);
                    }
                }
                let lo = match space {
                    MemSpace::Global => r.mem.try_read(base),
                    MemSpace::Shared => shared.try_read(base),
                };
                let Some(lo) = lo else {
                    r.mem_fault(base);
                    break;
                };
                write_result(w, instr, lane, d, lo, lo);
                if width == MemWidth::W64 {
                    let hi = match space {
                        MemSpace::Global => r.mem.try_read(base.wrapping_add(4)),
                        MemSpace::Shared => shared.try_read(base.wrapping_add(4)),
                    };
                    let Some(hi) = hi else {
                        r.mem_fault(base.wrapping_add(4));
                        break;
                    };
                    write_result(w, instr, lane, d.pair_hi(), hi, hi);
                }
            }
            *txns = segments.len().min(255) as u8;
            if space == MemSpace::Shared && exec_mask != 0 {
                *txns = 1;
            }
            w.frags[fi].pc += 1;
        }
        Op::St {
            space,
            addr,
            offset,
            v,
            width,
        } => {
            if exec_mask != 0 {
                // Stored values escape the warp-private snapshot: rollback
                // could re-execute (or fail to undo) them, so replay is
                // barred until the next checkpoint.
                w.dirty = true;
            }
            let mut segments: Vec<u32> = Vec::new();
            for lane in 0..32u32 {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let base = rd(r, w, lane, addr).wrapping_add(offset as u32);
                if space == MemSpace::Global {
                    let seg = base >> 7;
                    if !segments.contains(&seg) {
                        segments.push(seg);
                    }
                }
                let lo = rd(r, w, lane, v);
                let ok = match space {
                    MemSpace::Global => r.mem.try_write(base, lo),
                    MemSpace::Shared => shared.try_write(base, lo),
                };
                if !ok {
                    r.mem_fault(base);
                    break;
                }
                if width == MemWidth::W64 {
                    let hi = rd(r, w, lane, v.pair_hi());
                    let ok = match space {
                        MemSpace::Global => r.mem.try_write(base.wrapping_add(4), hi),
                        MemSpace::Shared => shared.try_write(base.wrapping_add(4), hi),
                    };
                    if !ok {
                        r.mem_fault(base.wrapping_add(4));
                        break;
                    }
                }
            }
            *txns = segments.len().min(255) as u8;
            if space == MemSpace::Shared && exec_mask != 0 {
                *txns = 1;
            }
            w.frags[fi].pc += 1;
        }
        Op::AtomAdd { addr, offset, v } => {
            if exec_mask != 0 {
                w.dirty = true;
            }
            let mut count = 0u32;
            for lane in 0..32u32 {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let base = rd(r, w, lane, addr).wrapping_add(offset as u32);
                let val = rd(r, w, lane, v);
                if r.mem.try_atomic_add(base, val).is_none() {
                    r.mem_fault(base);
                    break;
                }
                count += 1;
            }
            *txns = count.min(255) as u8;
            w.frags[fi].pc += 1;
        }
        Op::Shfl { d, a, mode } => {
            // Gather the source operand across all warp lanes first.
            let mut vals = [0u32; 32];
            for lane in 0..32u32 {
                vals[lane as usize] = if a.is_zero() { 0 } else { w.rf.peek(lane, a.0) };
            }
            for lane in 0..32u32 {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let src_lane = match mode {
                    ShflMode::Idx(s) => rsrc(r, w, lane, s) & 31,
                    ShflMode::Bfly(m) => lane ^ (m & 31),
                    ShflMode::Down(dl) => (lane + dl).min(31),
                    ShflMode::Up(dl) => lane.saturating_sub(dl),
                };
                let golden = vals[src_lane as usize];
                write_result(w, instr, lane, d, golden, golden);
            }
            w.frags[fi].pc += 1;
        }
    }
}

fn trace_ops2(r: &mut Runner<'_>, w: &mut Warp, exec_mask: u32, op: &Op, a: Reg, b: Src) {
    if !r.cfg.trace_operands || exec_mask == 0 {
        return;
    }
    if let Some(unit) = traced_unit(op) {
        let lane = exec_mask.trailing_zeros();
        let av = if a.is_zero() { 0 } else { w.rf.peek(lane, a.0) };
        let bv = match b {
            Src::Reg(reg) if !reg.is_zero() => w.rf.peek(lane, reg.0),
            Src::Reg(_) => 0,
            Src::Imm(i) => i as u32,
        };
        r.operands.record(unit, [u64::from(av), u64::from(bv), 0]);
    }
}

pub(crate) fn compare(cmp: CmpOp, ty: CmpTy, x: u32, y: u32) -> bool {
    match ty {
        CmpTy::I32 => {
            let (a, b) = (x as i32, y as i32);
            apply_cmp(cmp, a.partial_cmp(&b))
        }
        CmpTy::U32 => apply_cmp(cmp, x.partial_cmp(&y)),
        CmpTy::F32 => {
            let (a, b) = (f32::from_bits(x), f32::from_bits(y));
            apply_cmp(cmp, a.partial_cmp(&b))
        }
    }
}

fn apply_cmp(cmp: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::{Equal, Greater, Less};
    match (cmp, ord) {
        (_, None) => false,
        (CmpOp::Eq, Some(Equal)) => true,
        (CmpOp::Ne, Some(Less | Greater)) => true,
        (CmpOp::Lt, Some(Less)) => true,
        (CmpOp::Le, Some(Less | Equal)) => true,
        (CmpOp::Gt, Some(Greater)) => true,
        (CmpOp::Ge, Some(Greater | Equal)) => true,
        _ => false,
    }
}
