//! HTTP front-end round trip over an ephemeral port: submit, status,
//! results, cancel, and the structured `422` rejection paths (including
//! the verify gate surfacing a non-applicable cell's reason in the error
//! body).

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use swapcodes_core::Scheme;
use swapcodes_serve::{http, Service, ServiceConfig};
use swapcodes_workloads::all;

fn start_api(
    workers: usize,
) -> (
    Arc<Service>,
    String,
    Arc<AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().expect("addr").to_string();
    let service = Arc::new(Service::start(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            http::serve(&service, &listener, &stop).expect("serve loop");
        })
    };
    (service, addr, stop, handle)
}

#[test]
fn http_round_trip_submit_status_results_cancel() {
    let (service, addr, stop, handle) = start_api(2);

    let (status, body) = http::request(&addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));

    // Structured rejections: garbage, then an unknown workload.
    let (status, body) = http::request(&addr, "POST", "/jobs", Some("not json")).expect("post");
    assert_eq!(status, 422);
    assert!(body.contains("\"error\":\"bad_json\""), "{body}");
    let (status, body) = http::request(
        &addr,
        "POST",
        "/jobs",
        Some(r#"{"workloads":["no-such-workload"],"schemes":["swap-ecc"]}"#),
    )
    .expect("post");
    assert_eq!(status, 422);
    assert!(body.contains("\"error\":\"unknown_workload\""), "{body}");

    // A clean submission is accepted and runs to completion.
    let (status, body) = http::request(
        &addr,
        "POST",
        "/jobs",
        Some(
            r#"{"name":"api","workloads":["kmeans"],"schemes":["swap-ecc"],
                "trials":8,"seed":1,"shard_trials":4}"#,
        ),
    )
    .expect("post");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"job\":0}");
    assert!(service.wait(0, Duration::from_secs(300)), "job finishes");

    let (status, body) = http::request(&addr, "GET", "/jobs/0", None).expect("status");
    assert_eq!(status, 200);
    assert!(body.contains("\"state\":\"completed\""), "{body}");
    let (status, body) = http::request(&addr, "GET", "/jobs/0/results", None).expect("results");
    assert_eq!(status, 200);
    assert!(body.contains("\"coverage\""), "{body}");
    assert!(body.contains("\"wilson_lo\""), "{body}");
    let (status, body) = http::request(&addr, "GET", "/jobs", None).expect("list");
    assert_eq!(status, 200);
    assert!(body.contains("\"job\":0"), "{body}");

    // Cancel is idempotent on a settled job; unknown routes/ids are 404.
    let (status, _) = http::request(&addr, "POST", "/jobs/0/cancel", None).expect("cancel");
    assert_eq!(status, 200);
    let (status, _) = http::request(&addr, "GET", "/jobs/42", None).expect("missing");
    assert_eq!(status, 404);
    let (status, _) = http::request(&addr, "GET", "/nope", None).expect("bad route");
    assert_eq!(status, 404);
    let (status, _) = http::request(&addr, "PUT", "/jobs", None).expect("bad method");
    assert_eq!(status, 405);

    stop.store(true, Ordering::SeqCst);
    handle.join().expect("serve thread");
    service.shutdown();
}

/// If any built-in (workload, scheme) cell is inapplicable (e.g.
/// inter-thread duplication over a kernel that already uses its lanes),
/// submitting it must answer `422` with the transform error in the body —
/// the verify gate talking to the tenant instead of a worker panicking.
#[test]
fn http_rejects_inapplicable_cell_with_structured_body() {
    let scheme = Scheme::InterThread { checked: true };
    let inapplicable = all()
        .into_iter()
        .find(|w| swapcodes_core::apply(scheme, &w.kernel, w.launch).is_err())
        .map(|w| (w.name.to_owned(), scheme));
    let Some((workload, scheme)) = inapplicable else {
        // Every cell applies: nothing to reject, nothing to test.
        return;
    };

    let (service, addr, stop, handle) = start_api(1);
    let spec = format!(
        r#"{{"workloads":["{workload}"],"schemes":["{}"],"trials":4}}"#,
        scheme.label()
    );
    let (status, body) = http::request(&addr, "POST", "/jobs", Some(&spec)).expect("post");
    assert_eq!(status, 422, "{body}");
    assert!(
        body.contains("\"error\":\"scheme_not_applicable\""),
        "{body}"
    );
    assert!(
        body.contains(&format!("\"workload\":\"{workload}\"")),
        "{body}"
    );
    assert!(body.contains("\"detail\":"), "{body}");

    stop.store(true, Ordering::SeqCst);
    handle.join().expect("serve thread");
    service.shutdown();
}
