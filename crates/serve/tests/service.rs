//! End-to-end robustness tests over a live campaign service.
//!
//! The acceptance property throughout: because every trial is a pure
//! function of `(seed, trial index)`, the service's merged per-cell
//! tallies must be **byte-identical** to a single-threaded serial run of
//! the same campaign — no matter how many worker attempts were killed
//! (panic, vanish, hang), how shards were interleaved across the pool, or
//! whether the whole service process was torn down and restarted from its
//! persisted state mid-campaign.

use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;
use swapcodes_core::Scheme;
use swapcodes_inject::{ArchCampaign, CampaignOptions, FaultClassTallies, FaultMix};
use swapcodes_serve::{
    ChaosAction, ChaosConfig, JobState, Service, ServiceConfig, ShardStatus, SubmitError,
};
use swapcodes_workloads::by_name;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swapcodes-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The serial single-threaded reference for one cell: same seed, same mix,
/// same engine options the service workers use.
fn serial_reference(
    workload: &str,
    scheme: Scheme,
    seed: u64,
    mix: FaultMix,
    trials: u64,
) -> FaultClassTallies {
    let w = by_name(workload).expect("workload");
    let opts = CampaignOptions {
        mix,
        ..CampaignOptions::from_env()
    };
    let campaign = ArchCampaign::prepare_with(&w, scheme, seed, opts).expect("cell prepares");
    campaign.run_range_classed(0, trials)
}

/// Every cell of a settled job matches its serial reference byte-for-byte.
fn assert_cells_match_reference(service: &Service, id: u64) {
    let (cells, seed, mix, trials) = service.with_board(|b| {
        let job = &b.jobs[b.job_index(id).expect("job on board")];
        let cells: Vec<(String, Scheme, FaultClassTallies)> = job
            .cells
            .iter()
            .map(|c| (c.workload.clone(), c.scheme, c.merged().0))
            .collect();
        (cells, job.spec.seed, job.spec.mix, job.spec.trials)
    });
    for (workload, scheme, merged) in cells {
        let reference = serial_reference(&workload, scheme, seed, mix, trials);
        assert_eq!(
            merged,
            reference,
            "{workload} x {} diverges from the serial reference",
            scheme.label()
        );
    }
}

const WAIT: Duration = Duration::from_secs(300);

/// Acceptance: with *every* first attempt chaos-killed (well past the
/// "≥25% of workers killed" bar) across all three kill styles, every shard
/// still completes within the retry budget and the merged tallies are
/// byte-identical to the serial reference.
#[test]
fn chaos_killing_every_first_attempt_preserves_byte_identical_tallies() {
    let dir = scratch_dir("chaos");
    let cfg = ServiceConfig {
        workers: 4,
        shard_timeout_ms: 400,
        max_attempts: 4,
        backoff_base_ms: 5,
        checkpoint_interval: 5,
        dir: Some(dir.clone()),
        chaos: Some(ChaosConfig::new(
            0xC4A0_5BAD,
            1000,
            vec![ChaosAction::Panic, ChaosAction::Vanish, ChaosAction::Hang],
        )),
    };
    let service = Service::start(cfg);
    let id = service
        .submit(
            r#"{"name":"chaos","workloads":["kmeans","matmul"],
                "schemes":["swap-ecc","sw-dup"],"fault_mix":"all",
                "trials":24,"seed":77,"shard_trials":12}"#,
        )
        .expect("spec is admissible");
    assert!(service.wait(id, WAIT), "job must settle despite chaos");

    service.with_board(|b| {
        let job = &b.jobs[b.job_index(id).expect("job")];
        assert_eq!(job.state, JobState::Completed, "all shards within budget");
        for cell in &job.cells {
            for shard in &cell.shards {
                assert_eq!(shard.status, ShardStatus::Done, "{}", shard.spec.tag);
                assert_eq!(shard.cursor, shard.spec.end);
            }
        }
    });
    assert_cells_match_reference(&service, id);

    let m = service.metrics();
    // 2 workloads x 2 schemes x 2 shards = 8 first attempts, all killed.
    assert!(m.requeued >= 8, "every first attempt requeues: {m:?}");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Kill-and-resume chaos property: whatever the kill schedule (seed and
    /// kill fraction drawn per case), a settled campaign's merged tallies
    /// match the serial reference byte-for-byte.
    #[test]
    fn chaos_schedule_never_perturbs_tallies(
        chaos_seed in 0u64..u64::MAX,
        kill_permille in 250u64..=1000,
    ) {
        let dir = scratch_dir(&format!("prop-{chaos_seed:x}"));
        let cfg = ServiceConfig {
            workers: 3,
            shard_timeout_ms: 400,
            max_attempts: 4,
            backoff_base_ms: 5,
            checkpoint_interval: 4,
            dir: Some(dir.clone()),
            chaos: Some(ChaosConfig::new(
                chaos_seed,
                kill_permille,
                vec![ChaosAction::Panic, ChaosAction::Vanish, ChaosAction::Hang],
            )),
        };
        let service = Service::start(cfg);
        let id = service
            .submit(
                r#"{"name":"prop","workloads":["kmeans"],
                    "schemes":["swap-ecc","sw-dup"],"fault_mix":"transient:2,control:1",
                    "trials":24,"seed":3,"shard_trials":12}"#,
            )
            .expect("spec is admissible");
        prop_assert!(service.wait(id, WAIT), "job must settle despite chaos");
        let state = service.with_board(|b| b.jobs[b.job_index(id).unwrap()].state);
        prop_assert_eq!(state, JobState::Completed);
        assert_cells_match_reference(&service, id);
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A shard that hangs on *every* attempt is deadlined by the monitor,
/// requeued with backoff, and capped by the retry budget — degrading its
/// own job to `Degraded` while a second tenant's job completes untouched.
#[test]
fn hung_shard_is_deadlined_requeued_and_budget_capped_without_stalling_tenants() {
    let cfg = ServiceConfig {
        workers: 3,
        shard_timeout_ms: 60,
        max_attempts: 2,
        backoff_base_ms: 5,
        checkpoint_interval: 4,
        dir: None,
        chaos: Some(ChaosConfig {
            seed: 0xDEAD_10CC,
            kill_permille: 1000,
            actions: vec![ChaosAction::Hang],
            // Hang *every* attempt of job 0's shards; job 1 is untouched.
            first_attempt_only: false,
            only_tag_containing: Some("j0-".to_owned()),
        }),
    };
    let service = Service::start(cfg);
    let victim = service
        .submit(
            r#"{"name":"victim","workloads":["kmeans"],"schemes":["swap-ecc"],
                "trials":16,"seed":5,"shard_trials":16}"#,
        )
        .expect("victim spec");
    let bystander = service
        .submit(
            r#"{"name":"bystander","workloads":["kmeans"],"schemes":["sw-dup"],
                "trials":16,"seed":5,"shard_trials":8}"#,
        )
        .expect("bystander spec");
    assert_eq!((victim, bystander), (0, 1));

    assert!(
        service.wait(bystander, WAIT),
        "bystander must complete while the victim's shard hangs"
    );
    assert!(
        service.wait(victim, WAIT),
        "victim must settle once its retry budget is spent"
    );

    service.with_board(|b| {
        let v = &b.jobs[b.job_index(victim).expect("victim job")];
        assert_eq!(v.state, JobState::Degraded, "budget exhaustion degrades");
        let shard = &v.cells[0].shards[0];
        assert_eq!(shard.status, ShardStatus::Failed);
        assert_eq!(shard.failures, 2, "exactly max_attempts losses");
        let err = shard.last_error.as_deref().expect("loss reason recorded");
        assert!(err.contains("lost"), "loss-flavored error, got {err:?}");
        assert!(v.status_json().contains("\"state\":\"degraded\""));

        let by = &b.jobs[b.job_index(bystander).expect("bystander job")];
        assert_eq!(by.state, JobState::Completed);
    });
    assert_cells_match_reference(&service, bystander);

    let m = service.metrics();
    assert!(m.requeued >= 2, "both hung attempts count: {m:?}");
    assert!(m.recoveries >= 1, "monitor detected the loss: {m:?}");
    service.shutdown();
}

/// Full service teardown mid-campaign (modeling a crash or SIGKILL of the
/// whole process after checkpoints were flushed) followed by a fresh
/// `Service::start` over the same directory: the restarted generation
/// resumes from the persisted job files and shard checkpoints and finishes
/// byte-identical to the serial reference.
#[test]
fn service_restart_resumes_persisted_jobs_byte_identically() {
    let dir = scratch_dir("restart");
    let cfg = || ServiceConfig {
        workers: 2,
        shard_timeout_ms: 400,
        max_attempts: 4,
        backoff_base_ms: 5,
        checkpoint_interval: 2,
        dir: Some(dir.clone()),
        chaos: None,
    };

    // Generation 1: submit, let it make some progress, tear it down.
    let gen1 = Service::start(cfg());
    let id = gen1
        .submit(
            r#"{"name":"restart","workloads":["kmeans"],"schemes":["swap-ecc"],
                "fault_mix":"all","trials":24,"seed":11,"shard_trials":8}"#,
        )
        .expect("spec");
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        let done = gen1.with_board(|b| {
            let job = &b.jobs[b.job_index(id).expect("job")];
            job.completed_trials() > 0
        });
        if done || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    gen1.shutdown();

    // Generation 2: a fresh service over the same directory adopts the
    // persisted job and the shards' trusted prefixes.
    let gen2 = Service::start(cfg());
    let resumed = gen2.with_board(|b| b.job_index(id).is_some());
    assert!(resumed, "restart must resume the persisted job");
    assert!(gen2.wait(id, WAIT), "resumed job must finish");
    gen2.with_board(|b| {
        let job = &b.jobs[b.job_index(id).expect("job")];
        assert_eq!(job.state, JobState::Completed);
        assert_eq!(job.completed_trials(), job.total_trials());
    });
    assert_cells_match_reference(&gen2, id);
    gen2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancellation settles the job promptly (running shards stop at the next
/// issue boundary) and other tenants are unaffected.
#[test]
fn cancelled_job_settles_and_other_tenants_finish() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        shard_timeout_ms: 400,
        max_attempts: 4,
        backoff_base_ms: 5,
        checkpoint_interval: 8,
        dir: None,
        chaos: None,
    });
    let doomed = service
        .submit(
            r#"{"name":"doomed","workloads":["kmeans","matmul"],"schemes":["swap-ecc"],
                "trials":64,"seed":1,"shard_trials":16}"#,
        )
        .expect("spec");
    let survivor = service
        .submit(
            r#"{"name":"survivor","workloads":["kmeans"],"schemes":["sw-dup"],
                "trials":12,"seed":2,"shard_trials":6}"#,
        )
        .expect("spec");
    assert!(service.cancel(doomed), "known job cancels");
    assert!(!service.cancel(999), "unknown job does not");
    assert!(service.wait(doomed, WAIT), "cancelled job settles");
    assert!(service.wait(survivor, WAIT), "survivor completes");
    service.with_board(|b| {
        assert_eq!(
            b.jobs[b.job_index(doomed).unwrap()].state,
            JobState::Cancelled
        );
        assert_eq!(
            b.jobs[b.job_index(survivor).unwrap()].state,
            JobState::Completed
        );
    });
    assert_cells_match_reference(&service, survivor);
    service.shutdown();
}

/// Submitting garbage never reaches the queue: malformed JSON, bad fields
/// and verify-gate rejections all come back as structured errors.
#[test]
fn submit_rejects_structurally_with_verify_findings() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let err = service.submit("not json").expect_err("garbage");
    assert!(matches!(err, SubmitError::Spec(_)));
    assert!(err.to_json().contains("\"error\":\"bad_json\""));

    let err = service
        .submit(r#"{"workloads":["no-such-workload"],"schemes":["swap-ecc"]}"#)
        .expect_err("unknown workload");
    assert!(matches!(err, SubmitError::Gate(_)));
    assert!(err.to_json().contains("\"error\":\"unknown_workload\""));
    service.shutdown();
}
