//! The shard job queue: a `Mutex`/`Condvar` work queue with delayed
//! (backoff) entries and shutdown.
//!
//! Jobs are *references into the board* — `(job, cell, shard, attempt)`
//! indices — not payloads. A worker that pops a stale reference (the
//! monitor already requeued the shard under a newer attempt, or the tenant
//! cancelled the job) discards it after checking the board, so the queue
//! itself needs no cancellation surgery.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One unit of queued work: shard `shard` of cell `cell` of job `job`, to
/// be run as attempt `attempt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardJob {
    /// Board job index.
    pub job: usize,
    /// Cell index within the job.
    pub cell: usize,
    /// Shard index within the cell.
    pub shard: usize,
    /// The attempt this queue entry authorizes. A worker must re-check the
    /// board before running: if the board has moved past this attempt, the
    /// entry is stale and dropped.
    pub attempt: u32,
}

#[derive(Default)]
struct Inner {
    ready: VecDeque<ShardJob>,
    delayed: Vec<(Instant, ShardJob)>,
    shutdown: bool,
}

/// A blocking multi-producer multi-consumer queue of [`ShardJob`]s.
#[derive(Default)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready_cv: Condvar,
}

impl JobQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a job for immediate pickup.
    pub fn push(&self, job: ShardJob) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.ready.push_back(job);
        drop(inner);
        self.ready_cv.notify_one();
    }

    /// Enqueue a job that becomes available after `delay` — the retry
    /// backoff path. Delayed jobs are promoted by whichever worker polls
    /// next, so no timer thread is needed.
    pub fn push_after(&self, job: ShardJob, delay: Duration) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.delayed.push((Instant::now() + delay, job));
        drop(inner);
        // Wake a sleeper so its wait timeout tightens to the new deadline.
        self.ready_cv.notify_one();
    }

    /// Block until a job is available (or shutdown). Returns `None` exactly
    /// when the queue has been shut down.
    pub fn pop(&self) -> Option<ShardJob> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            let now = Instant::now();
            // Promote due delayed entries.
            let mut i = 0;
            while i < inner.delayed.len() {
                if inner.delayed[i].0 <= now {
                    let (_, job) = inner.delayed.swap_remove(i);
                    inner.ready.push_back(job);
                } else {
                    i += 1;
                }
            }
            if let Some(job) = inner.ready.pop_front() {
                return Some(job);
            }
            if inner.shutdown {
                return None;
            }
            let wait = inner
                .delayed
                .iter()
                .map(|(due, _)| due.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_millis(100));
            let (guard, _) = self
                .ready_cv
                .wait_timeout(inner, wait.max(Duration::from_millis(1)))
                .expect("queue poisoned");
            inner = guard;
        }
    }

    /// Shut the queue down: blocked and future `pop`s return `None`.
    /// Already-queued jobs are dropped (their shard checkpoints hold the
    /// durable state).
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.shutdown = true;
        drop(inner);
        self.ready_cv.notify_all();
    }

    /// Jobs currently queued (ready + delayed).
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("queue poisoned");
        inner.ready.len() + inner.delayed.len()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_shutdown() {
        let q = JobQueue::new();
        let job = |n| ShardJob {
            job: 0,
            cell: 0,
            shard: n,
            attempt: 0,
        };
        q.push(job(1));
        q.push(job(2));
        assert_eq!(q.pop().map(|j| j.shard), Some(1));
        assert_eq!(q.pop().map(|j| j.shard), Some(2));
        q.shutdown();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn delayed_jobs_become_available_and_unblock_poppers() {
        let q = Arc::new(JobQueue::new());
        let job = ShardJob {
            job: 0,
            cell: 0,
            shard: 7,
            attempt: 2,
        };
        q.push_after(job, Duration::from_millis(20));
        assert_eq!(q.len(), 1);
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        assert_eq!(popper.join().expect("popper"), Some(job));
        assert!(q.is_empty());
    }
}
