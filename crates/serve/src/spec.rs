//! Campaign specifications: what a tenant submits to the service.
//!
//! A spec is a JSON document naming a (workload × scheme) matrix, a
//! fault-class mix, a per-cell trial count and a seed:
//!
//! ```json
//! {
//!   "name": "nightly-sweep",
//!   "workloads": ["matmul", "kmeans"],
//!   "schemes": ["swap-ecc", "sw-dup"],
//!   "fault_mix": "all",
//!   "trials": 240,
//!   "seed": 7,
//!   "shard_trials": 60
//! }
//! ```
//!
//! Every cell's `trials` are split into shards of `shard_trials`
//! consecutive indices. Because trials are pure in `(seed, index)`, the
//! sharding is invisible in the results: any worker interleaving merges to
//! tallies byte-identical to a serial run.
//!
//! Submission is gated by the **static protection verifier**: a cell whose
//! transformed kernel is not statically clean is rejected up front with the
//! verifier's findings in the error body, instead of burning trial budget
//! on a scheme/workload pair known to leak.

use swapcodes_core::{PredictorSet, Scheme};
use swapcodes_inject::FaultMix;
use swapcodes_workloads::by_name;

use crate::json::{escape, Json};

/// Default per-cell trial count when the spec omits `trials`.
pub const DEFAULT_TRIALS: u64 = 240;
/// Default shard granularity when the spec omits `shard_trials`.
pub const DEFAULT_SHARD_TRIALS: u64 = 64;
/// Default campaign seed when the spec omits `seed`.
pub const DEFAULT_SEED: u64 = 0x5EED_C0DE;

/// A parsed, structurally-valid campaign spec (existence of the workloads
/// and cleanliness of the cells are checked separately by [`verify_gate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Human label for the job.
    pub name: String,
    /// Workload names (rows of the matrix).
    pub workloads: Vec<String>,
    /// Protection schemes (columns of the matrix).
    pub schemes: Vec<Scheme>,
    /// Fault-class sampling mix for every trial.
    pub mix: FaultMix,
    /// Trials per cell.
    pub trials: u64,
    /// Campaign seed (every per-trial draw derives from `(seed, index)`).
    pub seed: u64,
    /// Trials per shard.
    pub shard_trials: u64,
}

/// Why a spec failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The document is not JSON.
    BadJson(String),
    /// A required field is missing or has the wrong type.
    BadField(String),
    /// An unknown scheme label.
    UnknownScheme(String),
    /// The fault mix string did not parse.
    BadMix(String),
}

impl SpecError {
    /// Render as a structured HTTP error body.
    #[must_use]
    pub fn to_json(&self) -> String {
        let (kind, detail) = match self {
            SpecError::BadJson(m) => ("bad_json", m.clone()),
            SpecError::BadField(m) => ("bad_field", m.clone()),
            SpecError::UnknownScheme(m) => ("unknown_scheme", m.clone()),
            SpecError::BadMix(m) => ("bad_fault_mix", m.clone()),
        };
        format!(
            "{{\"error\":\"{kind}\",\"detail\":\"{}\"}}",
            escape(&detail)
        )
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::BadJson(m) => write!(f, "spec is not JSON: {m}"),
            SpecError::BadField(m) => write!(f, "bad spec field: {m}"),
            SpecError::UnknownScheme(m) => write!(f, "unknown scheme: {m}"),
            SpecError::BadMix(m) => write!(f, "bad fault mix: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Parse a scheme label. Accepts the paper's figure labels
/// (case-insensitively) and kebab-case aliases.
#[must_use]
pub fn parse_scheme(label: &str) -> Option<Scheme> {
    let norm: String = label
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    Some(match norm.as_str() {
        "original" | "baseline" => Scheme::Baseline,
        "swdup" => Scheme::SwDup,
        "swapecc" => Scheme::SwapEcc,
        "preaddsub" | "addsub" => Scheme::SwapPredict(PredictorSet::ADD_SUB),
        "premad" | "mad" => Scheme::SwapPredict(PredictorSet::MAD),
        "otherfxp" => Scheme::SwapPredict(PredictorSet::OTHER_FXP),
        "fpaddsub" => Scheme::SwapPredict(PredictorSet::FP_ADD_SUB),
        "fpmad" => Scheme::SwapPredict(PredictorSet::FP_MAD),
        "interthread" => Scheme::InterThread { checked: true },
        "interthreadnochecks" | "interthreadunchecked" => Scheme::InterThread { checked: false },
        _ => return None,
    })
}

impl CampaignSpec {
    /// Parse and structurally validate a spec document.
    ///
    /// # Errors
    ///
    /// A [`SpecError`] naming the first problem found.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let doc = Json::parse(text).map_err(SpecError::BadJson)?;
        Self::from_json(&doc)
    }

    /// Build a spec from an already-parsed JSON value (e.g. the `"spec"`
    /// member of a persisted job file).
    ///
    /// # Errors
    ///
    /// A [`SpecError`] naming the first problem found.
    pub fn from_json(doc: &Json) -> Result<Self, SpecError> {
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("campaign")
            .to_owned();
        let workloads: Vec<String> = doc
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or_else(|| SpecError::BadField("workloads: required string array".to_owned()))?
            .iter()
            .map(|v| {
                v.as_str().map(str::to_owned).ok_or_else(|| {
                    SpecError::BadField("workloads: entries must be strings".to_owned())
                })
            })
            .collect::<Result<_, _>>()?;
        let schemes: Vec<Scheme> = doc
            .get("schemes")
            .and_then(Json::as_arr)
            .ok_or_else(|| SpecError::BadField("schemes: required string array".to_owned()))?
            .iter()
            .map(|v| {
                let label = v.as_str().ok_or_else(|| {
                    SpecError::BadField("schemes: entries must be strings".to_owned())
                })?;
                parse_scheme(label).ok_or_else(|| SpecError::UnknownScheme(label.to_owned()))
            })
            .collect::<Result<_, _>>()?;
        if workloads.is_empty() || schemes.is_empty() {
            return Err(SpecError::BadField(
                "workloads and schemes must be non-empty".to_owned(),
            ));
        }
        let mix = match doc.get("fault_mix").map(|v| {
            v.as_str()
                .ok_or_else(|| SpecError::BadField("fault_mix: must be a string".to_owned()))
        }) {
            None => FaultMix::transient_only(),
            Some(v) => FaultMix::parse(v?).map_err(SpecError::BadMix)?,
        };
        let uint = |key: &str, default: u64| -> Result<u64, SpecError> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v.as_u64().ok_or_else(|| {
                    SpecError::BadField(format!("{key}: must be an unsigned integer"))
                }),
            }
        };
        let trials = uint("trials", DEFAULT_TRIALS)?;
        let seed = uint("seed", DEFAULT_SEED)?;
        let shard_trials = uint("shard_trials", DEFAULT_SHARD_TRIALS)?;
        if trials == 0 || shard_trials == 0 {
            return Err(SpecError::BadField(
                "trials and shard_trials must be positive".to_owned(),
            ));
        }
        Ok(Self {
            name,
            workloads,
            schemes,
            mix,
            trials,
            seed,
            shard_trials,
        })
    }

    /// Canonical JSON form — what the service persists for resume, and what
    /// `CampaignSpec::parse` round-trips.
    #[must_use]
    pub fn to_json(&self) -> String {
        let workloads: Vec<String> = self
            .workloads
            .iter()
            .map(|w| format!("\"{}\"", escape(w)))
            .collect();
        let schemes: Vec<String> = self
            .schemes
            .iter()
            .map(|s| format!("\"{}\"", escape(&s.label())))
            .collect();
        format!(
            "{{\"name\":\"{}\",\"workloads\":[{}],\"schemes\":[{}],\
             \"fault_mix\":\"{}\",\"trials\":{},\"seed\":{},\"shard_trials\":{}}}",
            escape(&self.name),
            workloads.join(","),
            schemes.join(","),
            self.mix_label(),
            self.trials,
            self.seed,
            self.shard_trials
        )
    }

    /// The mix in the weighted form [`FaultMix::parse`] accepts.
    #[must_use]
    pub fn mix_label(&self) -> String {
        format!(
            "transient:{},control:{},stuckat:{}",
            self.mix.transient, self.mix.control, self.mix.stuck_at
        )
    }

    /// The (workload, scheme) cells of the matrix, row-major.
    #[must_use]
    pub fn cells(&self) -> Vec<(String, Scheme)> {
        let mut out = Vec::with_capacity(self.workloads.len() * self.schemes.len());
        for w in &self.workloads {
            for s in &self.schemes {
                out.push((w.clone(), *s));
            }
        }
        out
    }

    /// The shard trial ranges `[start, end)` covering one cell.
    #[must_use]
    pub fn shard_ranges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.trials {
            let end = (start + self.shard_trials).min(self.trials);
            out.push((start, end));
            start = end;
        }
        out
    }
}

/// Why [`verify_gate`] rejected a spec.
#[derive(Debug, Clone)]
pub enum GateError {
    /// No workload registered under this name.
    UnknownWorkload {
        /// The name the spec asked for.
        name: String,
    },
    /// The scheme cannot transform the workload at all (e.g. inter-thread
    /// duplication over a kernel that already uses shuffles).
    NotApplicable {
        /// The workload of the rejected cell.
        workload: String,
        /// The scheme of the rejected cell.
        scheme: Scheme,
        /// The transform error text.
        reason: String,
    },
    /// The transformed kernel failed static protection verification; the
    /// verifier's findings ride along for the HTTP error body.
    NotClean {
        /// The workload of the rejected cell.
        workload: String,
        /// The scheme of the rejected cell.
        scheme: Scheme,
        /// The full verifier report, already rendered as JSON.
        report_json: String,
        /// Number of findings.
        findings: usize,
    },
}

impl GateError {
    /// Render as a structured HTTP error body. For a non-clean cell the
    /// verifier's findings are embedded verbatim under `"report"`.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            GateError::UnknownWorkload { name } => format!(
                "{{\"error\":\"unknown_workload\",\"workload\":\"{}\"}}",
                escape(name)
            ),
            GateError::NotApplicable {
                workload,
                scheme,
                reason,
            } => format!(
                "{{\"error\":\"scheme_not_applicable\",\"workload\":\"{}\",\
                 \"scheme\":\"{}\",\"detail\":\"{}\"}}",
                escape(workload),
                escape(&scheme.label()),
                escape(reason)
            ),
            GateError::NotClean {
                workload,
                scheme,
                report_json,
                findings,
            } => format!(
                "{{\"error\":\"verify_rejected\",\"workload\":\"{}\",\
                 \"scheme\":\"{}\",\"findings\":{findings},\"report\":{report_json}}}",
                escape(workload),
                escape(&scheme.label()),
            ),
        }
    }
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::UnknownWorkload { name } => write!(f, "unknown workload \"{name}\""),
            GateError::NotApplicable {
                workload,
                scheme,
                reason,
            } => write!(
                f,
                "{} x {} is not applicable: {reason}",
                workload,
                scheme.label()
            ),
            GateError::NotClean {
                workload,
                scheme,
                findings,
                ..
            } => write!(
                f,
                "{} x {} fails static verification with {findings} finding(s)",
                workload,
                scheme.label()
            ),
        }
    }
}

impl std::error::Error for GateError {}

/// Statically gate one transformed kernel: the cell is admissible only if
/// the verifier proves it clean. Exposed (rather than buried in
/// [`verify_gate`]) so tests can feed hand-mutated kernels — every built-in
/// (workload, scheme) cell verifies clean, so the rejection path is only
/// reachable with a broken kernel.
///
/// # Errors
///
/// [`GateError::NotClean`] carrying the verifier report.
pub fn gate_kernel(
    workload_name: &str,
    scheme: Scheme,
    kernel: &swapcodes_isa::Kernel,
) -> Result<(), GateError> {
    let report = swapcodes_verify::verify(scheme, kernel);
    if report.is_clean() {
        Ok(())
    } else {
        Err(GateError::NotClean {
            workload: workload_name.to_owned(),
            scheme,
            findings: report.findings.len(),
            report_json: report.to_json(),
        })
    }
}

/// Validate every cell of a spec against the static protection verifier:
/// the workload must exist, the scheme must transform it, and the
/// transformed (and peepholed — what the campaign actually executes) kernel
/// must verify clean.
///
/// # Errors
///
/// The first failing cell's [`GateError`].
pub fn verify_gate(spec: &CampaignSpec) -> Result<(), GateError> {
    for (name, scheme) in spec.cells() {
        let w = by_name(&name).ok_or_else(|| GateError::UnknownWorkload { name: name.clone() })?;
        let t = swapcodes_core::apply(scheme, &w.kernel, w.launch).map_err(|e| {
            GateError::NotApplicable {
                workload: name.clone(),
                scheme,
                reason: e.to_string(),
            }
        })?;
        let (kernel, _) = swapcodes_core::peephole(&t.kernel);
        gate_kernel(&name, scheme, &kernel)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_canonical_json() {
        let spec = CampaignSpec::parse(
            r#"{"name":"t","workloads":["matmul"],"schemes":["Swap-ECC","sw-dup"],
               "fault_mix":"all","trials":120,"seed":9,"shard_trials":40}"#,
        )
        .expect("parses");
        assert_eq!(spec.schemes, vec![Scheme::SwapEcc, Scheme::SwDup]);
        assert_eq!(spec.shard_ranges(), vec![(0, 40), (40, 80), (80, 120)]);
        let again = CampaignSpec::parse(&spec.to_json()).expect("canonical form parses");
        assert_eq!(again, spec);
    }

    #[test]
    fn scheme_labels_cover_paper_figures() {
        for (label, want) in [
            ("Original", Scheme::Baseline),
            ("SW-Dup", Scheme::SwDup),
            ("swap-ecc", Scheme::SwapEcc),
            ("Pre AddSub", Scheme::SwapPredict(PredictorSet::ADD_SUB)),
            ("Pre MAD", Scheme::SwapPredict(PredictorSet::MAD)),
            ("Other FxP", Scheme::SwapPredict(PredictorSet::OTHER_FXP)),
            ("Fp-AddSub", Scheme::SwapPredict(PredictorSet::FP_ADD_SUB)),
            ("Fp-MAD", Scheme::SwapPredict(PredictorSet::FP_MAD)),
            ("Inter-Thread", Scheme::InterThread { checked: true }),
        ] {
            assert_eq!(parse_scheme(label), Some(want), "{label}");
            // Every emitted label must parse back to the same scheme.
            assert_eq!(parse_scheme(&want.label()), Some(want));
        }
        assert_eq!(parse_scheme("bogus"), None);
    }

    #[test]
    fn structural_errors_are_structured() {
        let bad = CampaignSpec::parse("{}").expect_err("missing fields");
        assert!(matches!(bad, SpecError::BadField(_)));
        assert!(bad.to_json().contains("\"error\":\"bad_field\""));
        let bad = CampaignSpec::parse(r#"{"workloads":["matmul"],"schemes":["nope"]}"#)
            .expect_err("unknown scheme");
        assert!(matches!(bad, SpecError::UnknownScheme(_)));
    }

    #[test]
    fn gate_rejects_unknown_workload_and_accepts_clean_cells() {
        let spec =
            CampaignSpec::parse(r#"{"workloads":["not-a-workload"],"schemes":["swap-ecc"]}"#)
                .expect("parses");
        assert!(matches!(
            verify_gate(&spec),
            Err(GateError::UnknownWorkload { .. })
        ));
        let spec = CampaignSpec::parse(
            r#"{"workloads":["matmul"],"schemes":["swap-ecc","sw-dup"],"trials":8}"#,
        )
        .expect("parses");
        verify_gate(&spec).expect("built-in cells verify clean");
    }
}
