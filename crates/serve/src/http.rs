//! A minimal HTTP/1.1 front end over `std::net` — enough for the four
//! campaign endpoints, with no external dependencies.
//!
//! | Method & path            | Meaning                                   |
//! |--------------------------|-------------------------------------------|
//! | `GET /healthz`           | liveness probe                            |
//! | `GET /jobs`              | all-jobs summary                          |
//! | `POST /jobs`             | submit a campaign spec (body = spec JSON) |
//! | `GET /jobs/{id}`         | job status (per-shard detail)             |
//! | `GET /jobs/{id}/results` | merged per-class tallies + coverage       |
//! | `POST /jobs/{id}/cancel` | cancel a job                              |
//!
//! A rejected submission answers `422` with the structured error body —
//! for a verify-gated cell that body embeds the static verifier's findings
//! verbatim, so the tenant sees *why* the cell is unprotectable without
//! grepping server logs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::service::Service;

/// One parsed request.
struct Request {
    method: String,
    path: String,
    body: String,
}

fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length.min(1 << 20)];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        _ => "Internal Server Error",
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

fn route(service: &Service, req: &Request) -> (u16, String) {
    let segments: Vec<&str> = req.path.trim_matches('/').split('/').collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, "{\"ok\":true}".to_owned()),
        ("GET", ["jobs"]) => (200, service.list()),
        ("POST", ["jobs"]) => match service.submit(&req.body) {
            Ok(id) => (200, format!("{{\"job\":{id}}}")),
            Err(e) => (422, e.to_json()),
        },
        ("GET", ["jobs", id]) => match id.parse::<u64>().ok().and_then(|id| service.status(id)) {
            Some(body) => (200, body),
            None => (404, "{\"error\":\"unknown_job\"}".to_owned()),
        },
        ("GET", ["jobs", id, "results"]) => {
            match id.parse::<u64>().ok().and_then(|id| service.results(id)) {
                Some(body) => (200, body),
                None => (404, "{\"error\":\"unknown_job\"}".to_owned()),
            }
        }
        ("POST", ["jobs", id, "cancel"]) => match id.parse::<u64>().map(|id| service.cancel(id)) {
            Ok(true) => (200, "{\"cancelled\":true}".to_owned()),
            _ => (404, "{\"error\":\"unknown_job\"}".to_owned()),
        },
        ("GET" | "POST", _) => (404, "{\"error\":\"no_such_route\"}".to_owned()),
        _ => (405, "{\"error\":\"method_not_allowed\"}".to_owned()),
    }
}

/// Serve the campaign API on `listener` until `stop` is raised. Each
/// connection is handled inline (the API is tiny and the real work happens
/// on the worker pool), with a non-blocking accept loop so the stop flag is
/// honored promptly.
///
/// # Errors
///
/// Propagates only the initial `set_nonblocking` failure; per-connection
/// errors are swallowed (a broken client must not kill the service).
pub fn serve(
    service: &Arc<Service>,
    listener: &TcpListener,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if let Ok(req) = read_request(&mut stream) {
                    let (status, body) = route(service, &req);
                    respond(&mut stream, status, &body);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    Ok(())
}

/// One-shot HTTP client for the CLI and tests: send `method path` with an
/// optional body, return `(status, body)`.
///
/// # Errors
///
/// Any socket error, or a malformed status line.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, payload))
}
