//! `swapcodes-serve` — the campaign service CLI.
//!
//! ```text
//! swapcodes-serve serve  [--addr 127.0.0.1:7171] [--workers N] [--dir PATH]
//! swapcodes-serve submit [--addr ...] SPEC.json
//! swapcodes-serve status [--addr ...] JOB_ID
//! swapcodes-serve results [--addr ...] JOB_ID
//! swapcodes-serve cancel [--addr ...] JOB_ID
//! ```
//!
//! `serve` runs the worker pool and HTTP API in the foreground until
//! killed; with `--dir` it resumes persisted jobs from their shard
//! checkpoints on startup (the CI kill-and-restart flow). The other verbs
//! are thin HTTP clients printing the JSON response.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use swapcodes_serve::http;
use swapcodes_serve::{Service, ServiceConfig};

const DEFAULT_ADDR: &str = "127.0.0.1:7171";

fn usage() -> ExitCode {
    eprintln!(
        "usage: swapcodes-serve serve   [--addr HOST:PORT] [--workers N] [--dir PATH]\n\
         \u{20}      swapcodes-serve submit  [--addr HOST:PORT] SPEC.json\n\
         \u{20}      swapcodes-serve status  [--addr HOST:PORT] JOB_ID\n\
         \u{20}      swapcodes-serve results [--addr HOST:PORT] JOB_ID\n\
         \u{20}      swapcodes-serve cancel  [--addr HOST:PORT] JOB_ID"
    );
    ExitCode::from(2)
}

struct Flags {
    addr: String,
    workers: Option<usize>,
    dir: Option<String>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Option<Flags> {
    let mut flags = Flags {
        addr: DEFAULT_ADDR.to_owned(),
        workers: None,
        dir: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => flags.addr = it.next()?.clone(),
            "--workers" => flags.workers = it.next()?.parse().ok(),
            "--dir" => flags.dir = Some(it.next()?.clone()),
            _ if a.starts_with("--") => return None,
            _ => flags.positional.push(a.clone()),
        }
    }
    Some(flags)
}

fn client(addr: &str, method: &str, path: &str, body: Option<&str>) -> ExitCode {
    match http::request(addr, method, path, body) {
        Ok((status, payload)) => {
            println!("{payload}");
            if (200..300).contains(&status) {
                ExitCode::SUCCESS
            } else {
                eprintln!("swapcodes-serve: HTTP {status}");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("swapcodes-serve: {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(verb) = args.first().map(String::as_str) else {
        return usage();
    };
    let Some(flags) = parse_flags(&args[1..]) else {
        return usage();
    };
    match verb {
        "serve" => {
            let mut cfg = ServiceConfig::default();
            if let Some(w) = flags.workers {
                cfg.workers = w.max(1);
            }
            if let Some(d) = &flags.dir {
                cfg.dir = Some(d.into());
            }
            let listener = match TcpListener::bind(&flags.addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("swapcodes-serve: bind {}: {e}", flags.addr);
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "swapcodes-serve: listening on {} ({} workers{})",
                flags.addr,
                cfg.workers,
                cfg.dir
                    .as_ref()
                    .map(|d| format!(", state in {}", d.display()))
                    .unwrap_or_default()
            );
            let service = Arc::new(Service::start(cfg));
            let stop = AtomicBool::new(false);
            if let Err(e) = http::serve(&service, &listener, &stop) {
                eprintln!("swapcodes-serve: {e}");
                return ExitCode::FAILURE;
            }
            service.shutdown();
            ExitCode::SUCCESS
        }
        "submit" => {
            let Some(path) = flags.positional.first() else {
                return usage();
            };
            let spec = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("swapcodes-serve: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            client(&flags.addr, "POST", "/jobs", Some(&spec))
        }
        "status" | "results" | "cancel" => {
            let Some(id) = flags.positional.first() else {
                return usage();
            };
            match verb {
                "status" => client(&flags.addr, "GET", &format!("/jobs/{id}"), None),
                "results" => client(&flags.addr, "GET", &format!("/jobs/{id}/results"), None),
                _ => client(&flags.addr, "POST", &format!("/jobs/{id}/cancel"), None),
            }
        }
        _ => usage(),
    }
}
