//! The campaign service: a supervised worker pool executing shard jobs,
//! an aggregator merging streamed tally deltas, and a monitor enforcing
//! per-shard deadlines and heartbeat-based worker-loss detection.
//!
//! # Robustness model
//!
//! * **Shards are the unit of loss.** A worker leases one shard at a time
//!   and beats a heartbeat on every shard event. Trials are fuel-bounded,
//!   so a healthy worker always beats within a computable window; silence
//!   past that window (or blowing the shard's fuel-derived wall-clock
//!   deadline) means the worker is lost and the monitor requeues the shard
//!   from its last checkpoint's trusted prefix.
//! * **Attempts guard against zombies.** Every queue entry, lease and
//!   message is stamped with an attempt number; the board only accepts
//!   messages matching the shard's current attempt, so a presumed-dead
//!   worker that wakes up cannot double-count into a requeued shard.
//! * **Retries are bounded and backed off.** A lost or failed attempt is
//!   requeued with exponential backoff until the per-shard budget is
//!   exhausted, at which point the shard — not the campaign — fails and the
//!   cell degrades. The service never wedges.
//! * **Results are byte-identical.** Because trials are pure in
//!   `(seed, index)` and a requeued attempt re-adopts the checkpointed
//!   prefix, the merged final tallies match a single-threaded serial run
//!   exactly, no matter how many workers were lost.
//!
//! Chaos hooks ([`ChaosConfig`]) deterministically kill worker attempts
//! (panic, vanish without a trace, or hang) so tests and CI can prove the
//! recovery machinery end to end.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use swapcodes_core::Scheme;
use swapcodes_inject::{
    run_arch_shard_checkpointed, serve_workers_from_env, shard_timeout_ms_from_env, write_atomic,
    ArchCampaign, CampaignOptions, CheckpointConfig, FaultClassTallies, ShardControl, ShardEvent,
    ShardSpec,
};
use swapcodes_sim::FaultClass;
use swapcodes_workloads::by_name;

use crate::board::{Board, Job, JobState, Lease, ShardStatus};
use crate::json::Json;
use crate::queue::{JobQueue, ShardJob};
use crate::spec::{verify_gate, CampaignSpec, GateError, SpecError};

/// Simulator throughput assumed when deriving wall-clock deadlines from
/// fuel: a conservative lower bound on executed instructions per
/// millisecond, so deadlines are generous rather than trigger-happy.
pub const STEPS_PER_MS: u64 = 50_000;

/// How a chaos-killed worker attempt dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Panic mid-shard — exercises the supervisor's fast catch-and-requeue
    /// path.
    Panic,
    /// Return without reporting anything and stop heartbeating — exercises
    /// the monitor's heartbeat-loss path.
    Vanish,
    /// Spin without progress until the monitor abandons the lease —
    /// exercises the deadline path.
    Hang,
}

/// Deterministic worker-kill schedule: a hash of each shard tag decides
/// whether (and how) a shard attempt dies. By default only **first**
/// attempts are killed, so a retry budget of two always suffices under
/// chaos; see [`ChaosConfig::first_attempt_only`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Salt mixed into the per-shard hash.
    pub seed: u64,
    /// Kill probability per shard in permille (`250` = kill 25% of first
    /// attempts).
    pub kill_permille: u64,
    /// The kill styles to draw from.
    pub actions: Vec<ChaosAction>,
    /// Only kill first attempts (the default): retries always survive, so
    /// a retry budget of two suffices and every campaign completes. Set
    /// `false` to kill *every* attempt of a targeted shard — the
    /// budget-exhaustion tests use this to pin graceful degradation.
    pub first_attempt_only: bool,
    /// Restrict the kill schedule to shards whose tag contains this
    /// substring, leaving other tenants untouched.
    pub only_tag_containing: Option<String>,
}

impl ChaosConfig {
    /// An all-defaults schedule killing `kill_permille`/1000 of first
    /// attempts with the given actions.
    #[must_use]
    pub fn new(seed: u64, kill_permille: u64, actions: Vec<ChaosAction>) -> Self {
        Self {
            seed,
            kill_permille,
            actions,
            first_attempt_only: true,
            only_tag_containing: None,
        }
    }

    /// The kill decision for one shard: `Some((action, after_events))`
    /// kills the attempt after it has observed that many shard events.
    #[must_use]
    pub fn plan(&self, tag: &str) -> Option<(ChaosAction, u64)> {
        if self.actions.is_empty() {
            return None;
        }
        if let Some(needle) = &self.only_tag_containing {
            if !tag.contains(needle.as_str()) {
                return None;
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17);
        for b in tag.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if h % 1000 >= self.kill_permille {
            return None;
        }
        let action = self.actions
            [usize::try_from((h >> 10) % self.actions.len() as u64).expect("index fits")];
        let after = (h >> 20) % 12;
        Some((action, after))
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker-pool size (`SWAPCODES_SERVE_WORKERS` overrides the default
    /// of 4).
    pub workers: usize,
    /// Base per-shard deadline in milliseconds; the fuel-derived execution
    /// estimate is added on top (`SWAPCODES_SHARD_TIMEOUT_MS` overrides).
    pub shard_timeout_ms: u64,
    /// Attempts per shard before it fails permanently (first try included).
    pub max_attempts: u32,
    /// First retry backoff; doubles per failure.
    pub backoff_base_ms: u64,
    /// Trials between shard checkpoint flushes.
    pub checkpoint_interval: u64,
    /// Persistence root for job files, shard checkpoints and anomaly logs.
    /// `None` keeps everything in memory (no resume, no chaos-durable
    /// trusted prefixes — lost shards restart from their range start).
    pub dir: Option<PathBuf>,
    /// Deterministic worker-kill schedule, for tests and acceptance runs.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: serve_workers_from_env().unwrap_or(4).max(1),
            shard_timeout_ms: shard_timeout_ms_from_env().unwrap_or(5_000),
            max_attempts: 4,
            backoff_base_ms: 10,
            checkpoint_interval: 16,
            dir: None,
            chaos: None,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// The spec failed to parse or validate structurally.
    Spec(SpecError),
    /// A cell failed the static verify gate.
    Gate(GateError),
}

impl SubmitError {
    /// The structured HTTP error body.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            SubmitError::Spec(e) => e.to_json(),
            SubmitError::Gate(e) => e.to_json(),
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Spec(e) => e.fmt(f),
            SubmitError::Gate(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SubmitError {}

/// `(job index, cell index, shard index)` — a shard's position on the board.
type ShardKey = (usize, usize, usize);

/// Worker → aggregator messages. Every message is attempt-stamped.
enum Msg {
    /// A shard checkpoint was adopted: reset the live view to its prefix.
    Adopted {
        key: ShardKey,
        attempt: u32,
        classes: FaultClassTallies,
        cursor: u64,
    },
    /// One trial tallied.
    Delta {
        key: ShardKey,
        attempt: u32,
        class: FaultClass,
        outcome: swapcodes_inject::TrialOutcome,
    },
    /// The shard ran to its end; `classes` is authoritative.
    Done {
        key: ShardKey,
        attempt: u32,
        classes: FaultClassTallies,
        cursor: u64,
    },
    /// The attempt failed (panic, preparation error, unknown workload).
    Failed {
        key: ShardKey,
        attempt: u32,
        reason: String,
    },
    /// The attempt stopped at a cancellation point with a flushed
    /// checkpoint.
    Cancelled {
        key: ShardKey,
        attempt: u32,
        classes: FaultClassTallies,
        cursor: u64,
    },
}

struct Inner {
    board: Mutex<Board>,
    queue: JobQueue,
    cfg: ServiceConfig,
    epoch: Instant,
    shutdown: AtomicBool,
    requeues_total: AtomicU64,
    /// Worker-loss detections: `(key, detected_at_ms)` awaiting re-lease,
    /// drained into `recovery_latencies_ms` when a replacement adopts.
    pending_recovery: Mutex<Vec<(ShardKey, u64)>>,
    recovery_latencies_ms: Mutex<Vec<u64>>,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn backoff(&self, failures: u32) -> Duration {
        let exp = failures.saturating_sub(1).min(10);
        Duration::from_millis(self.cfg.backoff_base_ms.saturating_mul(1 << exp))
    }

    /// Requeue one shard after a lost/failed attempt, or fail it when the
    /// budget is gone. Caller holds the board lock and has verified the
    /// shard is `Running` under `attempt`.
    fn requeue_locked(&self, board: &mut Board, key: ShardKey, lost: bool) {
        let (ji, ci, si) = key;
        let job = &mut board.jobs[ji];
        let shard = &mut job.cells[ci].shards[si];
        shard.failures += 1;
        shard.lease = None;
        if lost {
            shard.last_error = Some("worker lost (missed heartbeat or deadline)".to_owned());
        }
        job.requeues += 1;
        self.requeues_total.fetch_add(1, Ordering::Relaxed);
        if shard.failures >= self.cfg.max_attempts {
            shard.status = ShardStatus::Failed;
            job.settle();
            return;
        }
        shard.attempt += 1;
        shard.status = ShardStatus::Queued;
        let entry = ShardJob {
            job: ji,
            cell: ci,
            shard: si,
            attempt: shard.attempt,
        };
        let backoff = self.backoff(shard.failures);
        if lost {
            self.pending_recovery
                .lock()
                .expect("recovery list poisoned")
                .push((key, self.now_ms()));
        }
        self.queue.push_after(entry, backoff);
    }

    fn persist_job(&self, job: &Job) {
        let Some(dir) = &self.cfg.dir else { return };
        let _ = std::fs::create_dir_all(dir);
        let cancelled = job.state == JobState::Cancelled;
        let body = format!(
            "{{\"id\":{},\"cancelled\":{cancelled},\"spec\":{}}}",
            job.id,
            job.spec.to_json()
        );
        let _ = write_atomic(&dir.join(format!("job-{}.json", job.id)), &body);
    }
}

/// Handle to a running campaign service. All methods take `&self`; the
/// service is shared behind an `Arc` by the HTTP front end.
pub struct Service {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl Service {
    /// Start the service: resume persisted jobs from `cfg.dir` (if any),
    /// then spawn the worker pool, the aggregator and the monitor.
    #[must_use]
    pub fn start(cfg: ServiceConfig) -> Self {
        let workers = cfg.workers;
        let inner = Arc::new(Inner {
            board: Mutex::new(Board::default()),
            queue: JobQueue::new(),
            cfg,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            requeues_total: AtomicU64::new(0),
            pending_recovery: Mutex::new(Vec::new()),
            recovery_latencies_ms: Mutex::new(Vec::new()),
        });
        resume_persisted_jobs(&inner);

        let (tx, rx) = channel::<Msg>();
        let mut handles = Vec::new();
        for _ in 0..workers {
            let inner2 = Arc::clone(&inner);
            let tx2 = tx.clone();
            handles.push(std::thread::spawn(move || worker_loop(&inner2, &tx2)));
        }
        drop(tx);
        {
            let inner2 = Arc::clone(&inner);
            handles.push(std::thread::spawn(move || aggregator_loop(&inner2, &rx)));
        }
        {
            let inner2 = Arc::clone(&inner);
            handles.push(std::thread::spawn(move || monitor_loop(&inner2)));
        }
        Self {
            inner,
            handles: Mutex::new(handles),
            stopped: AtomicBool::new(false),
        }
    }

    /// Validate, gate, persist and enqueue a campaign spec. Returns the
    /// job id.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the spec is malformed or a cell fails the
    /// static verify gate; nothing is enqueued on error.
    pub fn submit(&self, spec_text: &str) -> Result<u64, SubmitError> {
        let spec = CampaignSpec::parse(spec_text).map_err(SubmitError::Spec)?;
        verify_gate(&spec).map_err(SubmitError::Gate)?;
        let mut board = self.inner.board.lock().expect("board poisoned");
        let id = board.jobs.iter().map(|j| j.id + 1).max().unwrap_or(0);
        let job = Job::new(id, spec);
        self.inner.persist_job(&job);
        let ji = board.jobs.len();
        let entries: Vec<ShardJob> = job
            .cells
            .iter()
            .enumerate()
            .flat_map(|(ci, cell)| {
                (0..cell.shards.len()).map(move |si| ShardJob {
                    job: ji,
                    cell: ci,
                    shard: si,
                    attempt: 0,
                })
            })
            .collect();
        board.jobs.push(job);
        drop(board);
        for e in entries {
            self.inner.queue.push(e);
        }
        Ok(id)
    }

    /// The status document for a job, or `None` if the id is unknown.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<String> {
        let board = self.inner.board.lock().expect("board poisoned");
        board.job_index(id).map(|i| board.jobs[i].status_json())
    }

    /// The merged-results document for a job, or `None` if unknown.
    #[must_use]
    pub fn results(&self, id: u64) -> Option<String> {
        let board = self.inner.board.lock().expect("board poisoned");
        board.job_index(id).map(|i| board.jobs[i].results_json())
    }

    /// The all-jobs summary document.
    #[must_use]
    pub fn list(&self) -> String {
        self.inner
            .board
            .lock()
            .expect("board poisoned")
            .summary_json()
    }

    /// Cancel a job: running shards stop at their next issue boundary
    /// (flushing checkpoints), queued shards are dropped on pop. Returns
    /// `false` for an unknown id.
    #[must_use]
    pub fn cancel(&self, id: u64) -> bool {
        let mut board = self.inner.board.lock().expect("board poisoned");
        let Some(i) = board.job_index(id) else {
            return false;
        };
        board.jobs[i].state = JobState::Cancelled;
        board.jobs[i].cancel.cancel();
        self.inner.persist_job(&board.jobs[i]);
        true
    }

    /// Block until the job settles (completed/degraded/cancelled) or the
    /// timeout elapses. Returns whether it settled.
    #[must_use]
    pub fn wait(&self, id: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let board = self.inner.board.lock().expect("board poisoned");
                match board.job_index(id) {
                    None => return false,
                    Some(i) if board.jobs[i].is_settled() => return true,
                    Some(_) => {}
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Run `f` under the board lock — the escape hatch tests and the
    /// acceptance example use to inspect merged tallies directly.
    pub fn with_board<T>(&self, f: impl FnOnce(&Board) -> T) -> T {
        f(&self.inner.board.lock().expect("board poisoned"))
    }

    /// Service-level robustness metrics.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        let lat = self
            .inner
            .recovery_latencies_ms
            .lock()
            .expect("latency list poisoned");
        ServiceMetrics {
            workers: self.inner.cfg.workers,
            requeued: self.inner.requeues_total.load(Ordering::Relaxed),
            recoveries: lat.len() as u64,
            recovery_latency_ms_max: lat.iter().copied().max().unwrap_or(0),
            recovery_latency_ms_mean: if lat.is_empty() {
                0.0
            } else {
                lat.iter().sum::<u64>() as f64 / lat.len() as f64
            },
        }
    }

    /// Stop everything cleanly: cancel running shards (each flushes its
    /// checkpoint at the next issue boundary), drain the worker pool and
    /// join every thread. Idempotent.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let board = self.inner.board.lock().expect("board poisoned");
            for job in &board.jobs {
                job.cancel.cancel();
            }
        }
        self.inner.queue.shutdown();
        let handles = std::mem::take(&mut *self.handles.lock().expect("handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A snapshot of the service's loss-recovery counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceMetrics {
    /// Worker-pool size.
    pub workers: usize,
    /// Shard attempts requeued after loss, deadline or failure.
    pub requeued: u64,
    /// Worker losses detected by the monitor (heartbeat/deadline).
    pub recoveries: u64,
    /// Worst observed loss-detection-to-re-lease latency.
    pub recovery_latency_ms_max: u64,
    /// Mean loss-detection-to-re-lease latency.
    pub recovery_latency_ms_mean: f64,
}

fn resume_persisted_jobs(inner: &Arc<Inner>) {
    let Some(dir) = inner.cfg.dir.clone() else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut files: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("job-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    let mut board = inner.board.lock().expect("board poisoned");
    let mut entries_to_queue = Vec::new();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(doc) = Json::parse(&text) else {
            continue;
        };
        let Some(id) = doc.get("id").and_then(Json::as_u64) else {
            continue;
        };
        let cancelled = doc.get("cancelled").and_then(Json::as_bool) == Some(true);
        let Some(spec) = doc
            .get("spec")
            .and_then(|s| CampaignSpec::from_json(s).ok())
        else {
            continue;
        };
        if board.job_index(id).is_some() {
            continue;
        }
        let mut job = Job::new(id, spec);
        let ji = board.jobs.len();
        if cancelled {
            job.state = JobState::Cancelled;
        } else {
            for (ci, cell) in job.cells.iter().enumerate() {
                for si in 0..cell.shards.len() {
                    entries_to_queue.push(ShardJob {
                        job: ji,
                        cell: ci,
                        shard: si,
                        attempt: 0,
                    });
                }
            }
        }
        board.jobs.push(job);
    }
    drop(board);
    for e in entries_to_queue {
        inner.queue.push(e);
    }
}

/// What a worker found when it tried to lease a popped queue entry.
struct Leased {
    key: ShardKey,
    attempt: u32,
    shard: ShardSpec,
    workload: String,
    scheme: Scheme,
    seed: u64,
    mix: swapcodes_inject::FaultMix,
    lease: Lease,
    cancel: swapcodes_sim::CancelToken,
}

fn try_lease(inner: &Inner, sj: ShardJob) -> Option<Leased> {
    let mut board = inner.board.lock().expect("board poisoned");
    let job = board.jobs.get_mut(sj.job)?;
    if job.state == JobState::Cancelled {
        return None;
    }
    let cancel = job.cancel.clone();
    let seed = job.spec.seed;
    let mix = job.spec.mix;
    let cell = job.cells.get_mut(sj.cell)?;
    let workload = cell.workload.clone();
    let scheme = cell.scheme;
    let shard = cell.shards.get_mut(sj.shard)?;
    if shard.status != ShardStatus::Queued || shard.attempt != sj.attempt {
        return None; // stale queue entry: the shard moved on without us
    }
    shard.status = ShardStatus::Running;
    shard.classes = FaultClassTallies::default();
    shard.cursor = shard.spec.start;
    let now = inner.now_ms();
    // Deadlines start permissive; the worker tightens them once the
    // campaign is prepared and the fuel bound is known.
    let lease = Lease {
        beat: Arc::new(AtomicU64::new(now)),
        abandon: Arc::new(AtomicBool::new(false)),
        started_ms: now,
        beat_window_ms: u64::MAX,
        deadline_ms: u64::MAX,
    };
    shard.lease = Some(lease.clone());
    let spec = shard.spec.clone();
    let key = (sj.job, sj.cell, sj.shard);
    // Close the loss-recovery latency loop: this lease replaces a lost one.
    let mut pending = inner.pending_recovery.lock().expect("recovery poisoned");
    if let Some(pos) = pending.iter().position(|(k, _)| *k == key) {
        let (_, detected) = pending.swap_remove(pos);
        inner
            .recovery_latencies_ms
            .lock()
            .expect("latency list poisoned")
            .push(now.saturating_sub(detected));
    }
    drop(pending);
    Some(Leased {
        key,
        attempt: sj.attempt,
        shard: spec,
        workload,
        scheme,
        seed,
        mix,
        lease,
        cancel,
    })
}

fn worker_loop(inner: &Arc<Inner>, tx: &Sender<Msg>) {
    while let Some(sj) = inner.queue.pop() {
        let Some(leased) = try_lease(inner, sj) else {
            continue;
        };
        run_leased_shard(inner, tx, &leased);
    }
}

fn run_leased_shard(inner: &Arc<Inner>, tx: &Sender<Msg>, leased: &Leased) {
    let Some(w) = by_name(&leased.workload) else {
        let _ = tx.send(Msg::Failed {
            key: leased.key,
            attempt: leased.attempt,
            reason: format!("unknown workload \"{}\"", leased.workload),
        });
        return;
    };
    let opts = CampaignOptions {
        mix: leased.mix,
        ..CampaignOptions::from_env()
    };
    let campaign = match ArchCampaign::prepare_with(&w, leased.scheme, leased.seed, opts) {
        Ok(c) => c,
        Err(e) => {
            let _ = tx.send(Msg::Failed {
                key: leased.key,
                attempt: leased.attempt,
                reason: format!("campaign preparation failed: {e}"),
            });
            return;
        }
    };

    // Tighten the lease now that the fuel bound is known: one trial can
    // execute at most `fuel` instructions, so a healthy worker beats at
    // least every `base + fuel/STEPS` ms, and the whole shard finishes
    // within `base + shard_trials * fuel/STEPS` ms.
    let per_trial_ms = campaign.fuel / STEPS_PER_MS + 1;
    let shard_trials = leased.shard.end - leased.shard.start;
    {
        let mut board = inner.board.lock().expect("board poisoned");
        let (ji, ci, si) = leased.key;
        if let Some(shard) = board
            .jobs
            .get_mut(ji)
            .and_then(|j| j.cells.get_mut(ci))
            .and_then(|c| c.shards.get_mut(si))
        {
            if shard.attempt == leased.attempt && shard.status == ShardStatus::Running {
                if let Some(lease) = &mut shard.lease {
                    lease.beat_window_ms = inner.cfg.shard_timeout_ms + per_trial_ms;
                    lease.deadline_ms = inner
                        .now_ms()
                        .saturating_add(inner.cfg.shard_timeout_ms)
                        .saturating_add(shard_trials.saturating_mul(per_trial_ms));
                }
            }
        }
    }

    let chaos = inner.cfg.chaos.as_ref().and_then(|c| {
        // By default only first attempts die: chaos proves recovery, not
        // permafailure. `first_attempt_only: false` kills every attempt of
        // a targeted shard to exercise retry-budget exhaustion.
        (!c.first_attempt_only || leased.attempt == 0)
            .then(|| c.plan(&leased.shard.tag))
            .flatten()
    });
    let ck = CheckpointConfig {
        dir: inner.cfg.dir.clone(),
        interval: inner.cfg.checkpoint_interval,
        max_retries: 3,
        stop_after: None,
    };

    let mut events: u64 = 0;
    let mut vanished = false;
    let beat = Arc::clone(&leased.lease.beat);
    let abandon = Arc::clone(&leased.lease.abandon);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_arch_shard_checkpointed(&campaign, &leased.shard, &ck, Some(&leased.cancel), |ev| {
            beat.store(inner.now_ms(), Ordering::Relaxed);
            if abandon.load(Ordering::Relaxed) {
                return ShardControl::Die;
            }
            match ev {
                ShardEvent::Adopted { classes, cursor } => {
                    let _ = tx.send(Msg::Adopted {
                        key: leased.key,
                        attempt: leased.attempt,
                        classes: *classes,
                        cursor,
                    });
                }
                ShardEvent::Trial { class, outcome, .. } => {
                    let _ = tx.send(Msg::Delta {
                        key: leased.key,
                        attempt: leased.attempt,
                        class,
                        outcome,
                    });
                }
                ShardEvent::Checkpointed { .. } => {}
            }
            events += 1;
            if let Some((action, after)) = chaos {
                if events > after {
                    match action {
                        ChaosAction::Panic => panic!("chaos: injected worker panic"),
                        ChaosAction::Vanish => {
                            vanished = true;
                            return ShardControl::Die;
                        }
                        ChaosAction::Hang => loop {
                            // Frozen heartbeat; only the monitor's abandon
                            // flag gets us out.
                            if abandon.load(Ordering::Relaxed) {
                                return ShardControl::Die;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        },
                    }
                }
            }
            ShardControl::Continue
        })
    }));

    match outcome {
        Err(payload) => {
            let reason = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_owned());
            let _ = tx.send(Msg::Failed {
                key: leased.key,
                attempt: leased.attempt,
                reason,
            });
        }
        Ok(run) if run.finished => {
            let _ = tx.send(Msg::Done {
                key: leased.key,
                attempt: leased.attempt,
                classes: run.classes,
                cursor: run.cursor,
            });
        }
        Ok(run) if run.cancelled => {
            let _ = tx.send(Msg::Cancelled {
                key: leased.key,
                attempt: leased.attempt,
                classes: run.classes,
                cursor: run.cursor,
            });
        }
        Ok(_) => {
            // Abandoned. A vanished worker reports nothing and stops
            // beating (the monitor's heartbeat path requeues); a
            // monitor-abandoned worker's shard was already requeued when
            // the abandon flag was raised. Either way: silence.
            let _ = vanished;
        }
    }
}

fn aggregator_loop(inner: &Arc<Inner>, rx: &Receiver<Msg>) {
    while let Ok(msg) = rx.recv() {
        let mut board = inner.board.lock().expect("board poisoned");
        match msg {
            Msg::Adopted {
                key,
                attempt,
                classes,
                cursor,
            } => {
                if let Some(shard) = current_attempt(&mut board, key, attempt) {
                    shard.classes = classes;
                    shard.cursor = cursor;
                }
            }
            Msg::Delta {
                key,
                attempt,
                class,
                outcome,
            } => {
                if let Some(shard) = current_attempt(&mut board, key, attempt) {
                    shard.classes.record(class, outcome);
                    shard.cursor += 1;
                }
            }
            Msg::Done {
                key,
                attempt,
                classes,
                cursor,
            } => {
                if let Some(shard) = current_attempt(&mut board, key, attempt) {
                    shard.classes = classes;
                    shard.cursor = cursor;
                    shard.status = ShardStatus::Done;
                    shard.lease = None;
                    board.jobs[key.0].settle();
                }
            }
            Msg::Cancelled {
                key,
                attempt,
                classes,
                cursor,
            } => {
                if let Some(shard) = current_attempt(&mut board, key, attempt) {
                    shard.classes = classes;
                    shard.cursor = cursor;
                    shard.status = ShardStatus::Queued;
                    shard.lease = None;
                }
            }
            Msg::Failed {
                key,
                attempt,
                reason,
            } => {
                if let Some(shard) = current_attempt(&mut board, key, attempt) {
                    shard.last_error = Some(reason);
                    inner.requeue_locked(&mut board, key, false);
                }
            }
        }
    }
}

/// The shard at `key` iff it is still running the given attempt; stale
/// messages (zombie workers) resolve to `None` and are dropped.
fn current_attempt(
    board: &mut Board,
    key: ShardKey,
    attempt: u32,
) -> Option<&mut crate::board::Shard> {
    let (ji, ci, si) = key;
    let shard = board
        .jobs
        .get_mut(ji)?
        .cells
        .get_mut(ci)?
        .shards
        .get_mut(si)?;
    (shard.attempt == attempt && shard.status == ShardStatus::Running).then_some(shard)
}

fn monitor_loop(inner: &Arc<Inner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(10));
        let now = inner.now_ms();
        let mut board = inner.board.lock().expect("board poisoned");
        let mut lost = Vec::new();
        for (ji, job) in board.jobs.iter().enumerate() {
            if job.state == JobState::Cancelled {
                continue;
            }
            for (ci, cell) in job.cells.iter().enumerate() {
                for (si, shard) in cell.shards.iter().enumerate() {
                    if shard.status != ShardStatus::Running {
                        continue;
                    }
                    let Some(lease) = &shard.lease else { continue };
                    let silent = now.saturating_sub(lease.beat.load(Ordering::Relaxed));
                    if silent > lease.beat_window_ms || now > lease.deadline_ms {
                        lease.abandon.store(true, Ordering::Relaxed);
                        lost.push((ji, ci, si));
                    }
                }
            }
        }
        for key in lost {
            inner.requeue_locked(&mut board, key, true);
        }
    }
}
