//! The campaign board: authoritative in-memory state of every job, cell
//! and shard, plus the merge-on-read result views.
//!
//! Workers stream per-trial deltas into the board through the service's
//! aggregator; readers (`status`/`results` endpoints) merge shard tallies
//! on demand. Every mutation is attempt-guarded: a delta stamped with an
//! attempt the board has moved past (a zombie worker whose shard was
//! requeued) is dropped, so a lost-and-replaced worker can never
//! double-count. Dropping zombie deltas is also what keeps the final merge
//! byte-identical to a serial run — the replacement attempt re-runs the
//! same pure trials from the checkpointed trusted prefix.

use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;

use swapcodes_core::Scheme;
use swapcodes_inject::stats::Proportion;
use swapcodes_inject::{slug, ArchOutcomes, FaultClassTallies, ShardSpec};
use swapcodes_sim::CancelToken;

use crate::json::escape;
use crate::spec::CampaignSpec;

/// Lifecycle of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Waiting in (or headed back to) the job queue.
    Queued,
    /// Leased to a worker.
    Running,
    /// All trials tallied; `classes` is authoritative.
    Done,
    /// Retry budget exhausted; the cell degrades rather than wedging the
    /// campaign.
    Failed,
}

impl ShardStatus {
    /// Lowercase wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShardStatus::Queued => "queued",
            ShardStatus::Running => "running",
            ShardStatus::Done => "done",
            ShardStatus::Failed => "failed",
        }
    }
}

/// The liveness contract between a leased shard and the monitor thread.
#[derive(Debug, Clone)]
pub struct Lease {
    /// Milliseconds since service epoch of the worker's last progress
    /// signal (bumped on every shard event).
    pub beat: Arc<AtomicU64>,
    /// Set by the monitor to tell the (possibly zombie) worker to abandon
    /// the shard at its next event boundary.
    pub abandon: Arc<AtomicBool>,
    /// Lease start, ms since service epoch.
    pub started_ms: u64,
    /// Max silence between beats before the worker is declared lost. One
    /// trial is fuel-bounded, so a healthy worker always beats within this
    /// window.
    pub beat_window_ms: u64,
    /// Absolute wall-clock deadline (ms since epoch) for the whole attempt.
    pub deadline_ms: u64,
}

/// One shard of one cell.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Identity + trial range; the tag keys the on-disk checkpoint.
    pub spec: ShardSpec,
    /// Lifecycle state.
    pub status: ShardStatus,
    /// The attempt the board currently recognizes. Messages stamped with
    /// any other attempt are stale and dropped.
    pub attempt: u32,
    /// Attempts that ended in loss/failure (for the retry budget).
    pub failures: u32,
    /// Live tallies for the current attempt (authoritative once `Done`).
    pub classes: FaultClassTallies,
    /// One past the last tallied trial of the current attempt.
    pub cursor: u64,
    /// Liveness contract while `Running`.
    pub lease: Option<Lease>,
    /// Why the most recent attempt failed, for the status document.
    pub last_error: Option<String>,
}

impl Shard {
    /// Trials tallied so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.cursor - self.spec.start
    }
}

/// One (workload × scheme) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload name.
    pub workload: String,
    /// Protection scheme.
    pub scheme: Scheme,
    /// The cell's shards, in trial order.
    pub shards: Vec<Shard>,
}

impl Cell {
    /// Merge-on-read over the cell's shards: per-class tallies and the
    /// number of trials they cover.
    #[must_use]
    pub fn merged(&self) -> (FaultClassTallies, u64) {
        let mut classes = FaultClassTallies::default();
        let mut completed = 0;
        for s in &self.shards {
            classes.merge(&s.classes);
            completed += s.completed();
        }
        (classes, completed)
    }

    /// Cell-level status label, derived from the shards.
    #[must_use]
    pub fn status(&self) -> &'static str {
        if self.shards.iter().all(|s| s.status == ShardStatus::Done) {
            "done"
        } else if self
            .shards
            .iter()
            .all(|s| matches!(s.status, ShardStatus::Done | ShardStatus::Failed))
        {
            if self.shards.iter().any(|s| s.status == ShardStatus::Done) {
                "degraded"
            } else {
                "failed"
            }
        } else {
            "running"
        }
    }
}

/// Terminal and live job states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Shards queued or running.
    Running,
    /// Every shard done.
    Completed,
    /// Every shard settled, at least one failed.
    Degraded,
    /// Cancelled by the tenant.
    Cancelled,
}

impl JobState {
    /// Lowercase wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Degraded => "degraded",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One submitted campaign.
#[derive(Debug, Clone)]
pub struct Job {
    /// Service-assigned id.
    pub id: u64,
    /// The validated spec.
    pub spec: CampaignSpec,
    /// The (workload × scheme) matrix, row-major.
    pub cells: Vec<Cell>,
    /// Lifecycle state.
    pub state: JobState,
    /// Cancels every running shard of this job at its next issue boundary.
    pub cancel: CancelToken,
    /// Shard attempts requeued after loss, deadline or failure.
    pub requeues: u64,
}

impl Job {
    /// Build the board entry for a validated spec: one cell per matrix
    /// entry, one shard per trial range, everything `Queued`.
    #[must_use]
    pub fn new(id: u64, spec: CampaignSpec) -> Self {
        let ranges = spec.shard_ranges();
        let cells = spec
            .cells()
            .into_iter()
            .map(|(workload, scheme)| Cell {
                shards: ranges
                    .iter()
                    .enumerate()
                    .map(|(i, &(start, end))| Shard {
                        spec: ShardSpec {
                            tag: format!(
                                "j{id}-{}-{}-s{i}",
                                slug(&workload),
                                slug(&scheme.label())
                            ),
                            start,
                            end,
                        },
                        status: ShardStatus::Queued,
                        attempt: 0,
                        failures: 0,
                        classes: FaultClassTallies::default(),
                        cursor: start,
                        lease: None,
                        last_error: None,
                    })
                    .collect(),
                workload: workload.clone(),
                scheme,
            })
            .collect();
        Self {
            id,
            spec,
            cells,
            state: JobState::Running,
            cancel: CancelToken::new(),
            requeues: 0,
        }
    }

    /// Recompute the job state after a shard settled. Cancelled is sticky.
    pub fn settle(&mut self) {
        if self.state == JobState::Cancelled {
            return;
        }
        let mut any_failed = false;
        for cell in &self.cells {
            for shard in &cell.shards {
                match shard.status {
                    ShardStatus::Queued | ShardStatus::Running => {
                        self.state = JobState::Running;
                        return;
                    }
                    ShardStatus::Failed => any_failed = true,
                    ShardStatus::Done => {}
                }
            }
        }
        self.state = if any_failed {
            JobState::Degraded
        } else {
            JobState::Completed
        };
    }

    /// Whether every shard has settled (done or failed).
    #[must_use]
    pub fn is_settled(&self) -> bool {
        !matches!(self.state, JobState::Running)
    }

    /// Trials tallied across the whole job.
    #[must_use]
    pub fn completed_trials(&self) -> u64 {
        self.cells.iter().map(|c| c.merged().1).sum()
    }

    /// Total trials the job will run.
    #[must_use]
    pub fn total_trials(&self) -> u64 {
        self.spec.trials * self.cells.len() as u64
    }

    /// The status document for `GET /jobs/<id>`.
    #[must_use]
    pub fn status_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|cell| {
                let shards: Vec<String> = cell
                    .shards
                    .iter()
                    .map(|s| {
                        let err = s.last_error.as_ref().map_or_else(
                            || "null".to_owned(),
                            |e| format!("\"{}\"", escape(e)),
                        );
                        format!(
                            "{{\"tag\":\"{}\",\"start\":{},\"end\":{},\"status\":\"{}\",\
                             \"attempt\":{},\"failures\":{},\"completed\":{},\"last_error\":{err}}}",
                            escape(&s.spec.tag),
                            s.spec.start,
                            s.spec.end,
                            s.status.label(),
                            s.attempt,
                            s.failures,
                            s.completed()
                        )
                    })
                    .collect();
                let (_, completed) = cell.merged();
                format!(
                    "{{\"workload\":\"{}\",\"scheme\":\"{}\",\"status\":\"{}\",\
                     \"completed\":{completed},\"trials\":{},\"shards\":[{}]}}",
                    escape(&cell.workload),
                    escape(&cell.scheme.label()),
                    cell.status(),
                    self.spec.trials,
                    shards.join(",")
                )
            })
            .collect();
        format!(
            "{{\"job\":{},\"name\":\"{}\",\"state\":\"{}\",\"completed\":{},\
             \"total\":{},\"requeues\":{},\"cells\":[{}]}}",
            self.id,
            escape(&self.spec.name),
            self.state.label(),
            self.completed_trials(),
            self.total_trials(),
            self.requeues,
            cells.join(",")
        )
    }

    /// The merged-results document for `GET /jobs/<id>/results`: per-cell
    /// per-class outcome buckets plus live Wilson-interval coverage.
    #[must_use]
    pub fn results_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|cell| {
                let (classes, completed) = cell.merged();
                let buckets: Vec<String> = classes
                    .classes()
                    .iter()
                    .map(|(label, o)| format!("\"{label}\":{}", outcomes_json(o)))
                    .collect();
                let agg = classes.aggregate();
                format!(
                    "{{\"workload\":\"{}\",\"scheme\":\"{}\",\"status\":\"{}\",\
                     \"completed\":{completed},\"trials\":{},{},\
                     \"aggregate\":{},\"coverage\":{}}}",
                    escape(&cell.workload),
                    escape(&cell.scheme.label()),
                    cell.status(),
                    self.spec.trials,
                    buckets.join(","),
                    outcomes_json(&agg),
                    coverage_json(&agg)
                )
            })
            .collect();
        format!(
            "{{\"job\":{},\"name\":\"{}\",\"state\":\"{}\",\"mix\":\"{}\",\
             \"seed\":{},\"requeues\":{},\"cells\":[{}]}}",
            self.id,
            escape(&self.spec.name),
            self.state.label(),
            self.spec.mix_label(),
            self.spec.seed,
            self.requeues,
            cells.join(",")
        )
    }
}

/// One outcome tally as a JSON object.
#[must_use]
pub fn outcomes_json(o: &ArchOutcomes) -> String {
    format!(
        "{{\"trap\":{},\"due\":{},\"crash\":{},\"hang\":{},\"masked\":{},\
         \"sdc\":{},\"recovered\":{},\"miscorrected\":{},\"total\":{}}}",
        o.trap,
        o.due,
        o.crash,
        o.hang,
        o.masked,
        o.sdc,
        o.recovered(),
        o.miscorrected,
        o.total()
    )
}

/// Detection coverage with its Wilson 95% interval: detected over unmasked,
/// matching [`ArchOutcomes::coverage`].
#[must_use]
pub fn coverage_json(o: &ArchOutcomes) -> String {
    let detected = o.trap + o.due + o.crash + o.hang + o.recovered();
    let unmasked = detected + o.sdc + o.miscorrected;
    let p = Proportion::new(detected, unmasked);
    let (lo, hi) = p.wilson95();
    format!(
        "{{\"detected\":{detected},\"unmasked\":{unmasked},\
         \"point\":{:.6},\"wilson_lo\":{lo:.6},\"wilson_hi\":{hi:.6}}}",
        o.coverage()
    )
}

/// Every job the service knows about.
#[derive(Debug, Clone, Default)]
pub struct Board {
    /// Jobs, indexed by their position (ids are assigned monotonically but
    /// survive restarts, so position and id can differ).
    pub jobs: Vec<Job>,
}

impl Board {
    /// Find a job by its tenant-facing id.
    #[must_use]
    pub fn job_index(&self, id: u64) -> Option<usize> {
        self.jobs.iter().position(|j| j.id == id)
    }

    /// The one-line-per-job summary for `GET /jobs`.
    #[must_use]
    pub fn summary_json(&self) -> String {
        let jobs: Vec<String> = self
            .jobs
            .iter()
            .map(|j| {
                format!(
                    "{{\"job\":{},\"name\":\"{}\",\"state\":\"{}\",\
                     \"completed\":{},\"total\":{}}}",
                    j.id,
                    escape(&j.spec.name),
                    j.state.label(),
                    j.completed_trials(),
                    j.total_trials()
                )
            })
            .collect();
        format!("{{\"jobs\":[{}]}}", jobs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        CampaignSpec::parse(
            r#"{"name":"t","workloads":["matmul"],"schemes":["swap-ecc","sw-dup"],
               "trials":100,"shard_trials":40}"#,
        )
        .expect("spec parses")
    }

    #[test]
    fn job_layout_matches_spec() {
        let job = Job::new(3, small_spec());
        assert_eq!(job.cells.len(), 2);
        for cell in &job.cells {
            assert_eq!(cell.shards.len(), 3);
            assert_eq!(cell.shards[2].spec.start, 80);
            assert_eq!(cell.shards[2].spec.end, 100);
        }
        assert_eq!(job.total_trials(), 200);
        // Tags are unique across the whole job.
        let mut tags: Vec<&str> = job
            .cells
            .iter()
            .flat_map(|c| c.shards.iter().map(|s| s.spec.tag.as_str()))
            .collect();
        tags.sort_unstable();
        let n = tags.len();
        tags.dedup();
        assert_eq!(tags.len(), n);
    }

    #[test]
    fn settle_tracks_shard_states() {
        let mut job = Job::new(0, small_spec());
        job.settle();
        assert_eq!(job.state, JobState::Running);
        for cell in &mut job.cells {
            for shard in &mut cell.shards {
                shard.status = ShardStatus::Done;
            }
        }
        job.settle();
        assert_eq!(job.state, JobState::Completed);
        job.state = JobState::Running;
        job.cells[0].shards[0].status = ShardStatus::Failed;
        job.settle();
        assert_eq!(job.state, JobState::Degraded);
        assert_eq!(job.cells[0].status(), "degraded");
        assert_eq!(job.cells[1].status(), "done");
    }

    #[test]
    fn status_and_results_render_valid_shapes() {
        let job = Job::new(1, small_spec());
        let status = job.status_json();
        assert!(status.contains("\"state\":\"running\""));
        assert!(status.contains("\"shards\":["));
        let results = job.results_json();
        assert!(results.contains("\"coverage\":{"));
        assert!(results.contains("\"wilson_lo\""));
        // Both parse back through the crate's own JSON reader.
        crate::json::Json::parse(&status).expect("status is valid JSON");
        crate::json::Json::parse(&results).expect("results are valid JSON");
    }
}
