//! Injection-as-a-service: a sharded, resumable, multi-tenant campaign
//! service over the SwapCodes fault-injection stack.
//!
//! A tenant submits a **campaign spec** — a (workload × scheme) matrix, a
//! fault-class mix, a trial count and a seed ([`spec`]). The service splits
//! every cell into **shard jobs** (contiguous trial ranges keyed by the
//! campaign's pure per-trial seeding), pushes them onto a work queue
//! ([`queue`]) and executes them on a supervised worker pool ([`service`])
//! that streams per-trial tally deltas into a merge-on-read aggregation
//! board ([`board`]) serving live Wilson-interval coverage.
//!
//! The supervisor treats workers as unreliable: per-shard fuel-derived
//! deadlines, heartbeat-based loss detection, bounded exponential-backoff
//! retries from each shard's checkpointed trusted prefix, and graceful
//! per-cell degradation when a shard's budget is exhausted. Because trials
//! are pure functions of `(seed, index)`, the merged results are
//! byte-identical to a single-threaded serial run no matter how many
//! workers were killed along the way — the property the chaos tests and
//! the CI acceptance gate pin down.
//!
//! [`http`] fronts the service with a dependency-free HTTP/JSON API; the
//! `swapcodes-serve` binary wraps both into a CLI
//! (`serve`/`submit`/`status`/`results`/`cancel`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod http;
pub mod json;
pub mod queue;
pub mod service;
pub mod spec;

pub use board::{Board, Cell, Job, JobState, Lease, Shard, ShardStatus};
pub use json::Json;
pub use queue::{JobQueue, ShardJob};
pub use service::{
    ChaosAction, ChaosConfig, Service, ServiceConfig, ServiceMetrics, SubmitError, STEPS_PER_MS,
};
pub use spec::{gate_kernel, parse_scheme, verify_gate, CampaignSpec, GateError, SpecError};
