//! A minimal recursive-descent JSON reader for campaign specs.
//!
//! The workspace vendors a no-op `serde` facade, so every on-disk and
//! on-wire format is hand-rolled. The flat single-line parser in
//! `swapcodes_inject::harness` covers checkpoints; campaign specs need
//! nesting (arrays of workloads and schemes), hence this small full
//! parser. Numbers keep their raw text so 64-bit seeds round-trip without
//! passing through `f64`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is an unsigned integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_owned())?;
        if raw.parse::<f64>().is_err() {
            return Err(format!("malformed number '{raw}' at byte {start}"));
        }
        Ok(Json::Num(raw.to_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for spec files;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_owned())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Escape a string for embedding inside a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_spec_shape() {
        let v = Json::parse(
            r#"{"name":"n","workloads":["matmul","kmeans"],
               "trials": 240, "seed": 18446744073709551615,
               "nested": {"a": [1, 2.5, -3], "b": true, "c": null}}"#,
        )
        .expect("parses");
        assert_eq!(v.get("name").and_then(Json::as_str), Some("n"));
        assert_eq!(v.get("trials").and_then(Json::as_u64), Some(240));
        // u64::MAX survives without an f64 round-trip.
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        let arr = v
            .get("workloads")
            .and_then(Json::as_arr)
            .expect("workloads array");
        assert_eq!(arr.len(), 2);
        let nested = v.get("nested").expect("nested obj");
        assert_eq!(
            nested.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(nested.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(nested.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} extra",
            "\"unterminated",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\nA""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
