//! SwapCodes: a full reproduction of "SwapCodes: Error Codes for Hardware-
//! Software Cooperative GPU Pipeline Error Detection" (MICRO 2018).
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! * [`ecc`] — error codes (Hsiao SEC-DED, SEC, parity, low-cost residues),
//!   the SEC-DED-DP / SEC-DP reporting algorithms and residue arithmetic;
//! * [`gates`] — gate-level arithmetic units, fault injection and NAND2
//!   area accounting;
//! * [`isa`] — the SASS-like kernel IR;
//! * [`sim`] — the SIMT SM simulator with an ECC-protected register file;
//! * [`core`] — the SwapCodes compiler passes and protection schemes;
//! * [`workloads`] — the Rodinia/SNAP/matmul-like benchmark suite;
//! * [`inject`] — gate-level and architecture-level injection campaigns;
//! * [`verify`] — the static protection verifier: CFG + dataflow coverage
//!   proofs and lints for transformed kernels.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-figure
//! reproductions.

#![forbid(unsafe_code)]

pub use swapcodes_core as core;
pub use swapcodes_ecc as ecc;
pub use swapcodes_gates as gates;
pub use swapcodes_inject as inject;
pub use swapcodes_isa as isa;
pub use swapcodes_sim as sim;
pub use swapcodes_verify as verify;
pub use swapcodes_workloads as workloads;
