/root/repo/target/debug/examples/storage_correction-1d73b4855fafaa29.d: examples/storage_correction.rs Cargo.toml

/root/repo/target/debug/examples/libstorage_correction-1d73b4855fafaa29.rmeta: examples/storage_correction.rs Cargo.toml

examples/storage_correction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
