/root/repo/target/debug/examples/pipeline_fault_injection-56d4472cb5f9a98e.d: examples/pipeline_fault_injection.rs

/root/repo/target/debug/examples/pipeline_fault_injection-56d4472cb5f9a98e: examples/pipeline_fault_injection.rs

examples/pipeline_fault_injection.rs:
