/root/repo/target/debug/examples/predictor_design_space-df2d6bd178c01772.d: examples/predictor_design_space.rs Cargo.toml

/root/repo/target/debug/examples/libpredictor_design_space-df2d6bd178c01772.rmeta: examples/predictor_design_space.rs Cargo.toml

examples/predictor_design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
