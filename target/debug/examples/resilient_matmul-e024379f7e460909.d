/root/repo/target/debug/examples/resilient_matmul-e024379f7e460909.d: examples/resilient_matmul.rs

/root/repo/target/debug/examples/resilient_matmul-e024379f7e460909: examples/resilient_matmul.rs

examples/resilient_matmul.rs:
