/root/repo/target/debug/examples/predictor_design_space-951adb697c075a2d.d: examples/predictor_design_space.rs Cargo.toml

/root/repo/target/debug/examples/libpredictor_design_space-951adb697c075a2d.rmeta: examples/predictor_design_space.rs Cargo.toml

examples/predictor_design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
