/root/repo/target/debug/examples/pipeline_fault_injection-c094f22dc34ae4d9.d: examples/pipeline_fault_injection.rs

/root/repo/target/debug/examples/pipeline_fault_injection-c094f22dc34ae4d9: examples/pipeline_fault_injection.rs

examples/pipeline_fault_injection.rs:
