/root/repo/target/debug/examples/resilient_matmul-c4ce1be7ca8f1938.d: examples/resilient_matmul.rs

/root/repo/target/debug/examples/resilient_matmul-c4ce1be7ca8f1938: examples/resilient_matmul.rs

examples/resilient_matmul.rs:
