/root/repo/target/debug/examples/quickstart-bce90c135cb23598.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bce90c135cb23598: examples/quickstart.rs

examples/quickstart.rs:
