/root/repo/target/debug/examples/perf_baseline-23fd2303850ab2b5.d: crates/bench/examples/perf_baseline.rs Cargo.toml

/root/repo/target/debug/examples/libperf_baseline-23fd2303850ab2b5.rmeta: crates/bench/examples/perf_baseline.rs Cargo.toml

crates/bench/examples/perf_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
