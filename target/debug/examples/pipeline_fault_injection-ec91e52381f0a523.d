/root/repo/target/debug/examples/pipeline_fault_injection-ec91e52381f0a523.d: examples/pipeline_fault_injection.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_fault_injection-ec91e52381f0a523.rmeta: examples/pipeline_fault_injection.rs Cargo.toml

examples/pipeline_fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
