/root/repo/target/debug/examples/resilient_matmul-96a1834ca588977c.d: examples/resilient_matmul.rs Cargo.toml

/root/repo/target/debug/examples/libresilient_matmul-96a1834ca588977c.rmeta: examples/resilient_matmul.rs Cargo.toml

examples/resilient_matmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
