/root/repo/target/debug/examples/perf_baseline-f968c50b41dff01f.d: crates/bench/examples/perf_baseline.rs

/root/repo/target/debug/examples/perf_baseline-f968c50b41dff01f: crates/bench/examples/perf_baseline.rs

crates/bench/examples/perf_baseline.rs:
