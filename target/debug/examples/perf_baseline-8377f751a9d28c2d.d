/root/repo/target/debug/examples/perf_baseline-8377f751a9d28c2d.d: crates/bench/examples/perf_baseline.rs

/root/repo/target/debug/examples/perf_baseline-8377f751a9d28c2d: crates/bench/examples/perf_baseline.rs

crates/bench/examples/perf_baseline.rs:
