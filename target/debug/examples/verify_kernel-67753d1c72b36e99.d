/root/repo/target/debug/examples/verify_kernel-67753d1c72b36e99.d: examples/verify_kernel.rs

/root/repo/target/debug/examples/verify_kernel-67753d1c72b36e99: examples/verify_kernel.rs

examples/verify_kernel.rs:
