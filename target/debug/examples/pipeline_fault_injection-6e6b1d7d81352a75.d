/root/repo/target/debug/examples/pipeline_fault_injection-6e6b1d7d81352a75.d: examples/pipeline_fault_injection.rs

/root/repo/target/debug/examples/pipeline_fault_injection-6e6b1d7d81352a75: examples/pipeline_fault_injection.rs

examples/pipeline_fault_injection.rs:
