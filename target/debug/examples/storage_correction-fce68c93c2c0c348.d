/root/repo/target/debug/examples/storage_correction-fce68c93c2c0c348.d: examples/storage_correction.rs

/root/repo/target/debug/examples/storage_correction-fce68c93c2c0c348: examples/storage_correction.rs

examples/storage_correction.rs:
