/root/repo/target/debug/examples/pipeline_fault_injection-5e4e48864939455e.d: examples/pipeline_fault_injection.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_fault_injection-5e4e48864939455e.rmeta: examples/pipeline_fault_injection.rs Cargo.toml

examples/pipeline_fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
