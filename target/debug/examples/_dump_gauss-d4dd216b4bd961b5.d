/root/repo/target/debug/examples/_dump_gauss-d4dd216b4bd961b5.d: examples/_dump_gauss.rs

/root/repo/target/debug/examples/_dump_gauss-d4dd216b4bd961b5: examples/_dump_gauss.rs

examples/_dump_gauss.rs:
