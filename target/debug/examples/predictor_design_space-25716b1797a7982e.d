/root/repo/target/debug/examples/predictor_design_space-25716b1797a7982e.d: examples/predictor_design_space.rs

/root/repo/target/debug/examples/predictor_design_space-25716b1797a7982e: examples/predictor_design_space.rs

examples/predictor_design_space.rs:
