/root/repo/target/debug/examples/quickstart-9bec6896978f3365.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9bec6896978f3365: examples/quickstart.rs

examples/quickstart.rs:
