/root/repo/target/debug/examples/verify_kernel-33fef7b037407294.d: examples/verify_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libverify_kernel-33fef7b037407294.rmeta: examples/verify_kernel.rs Cargo.toml

examples/verify_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
