/root/repo/target/debug/examples/resilient_matmul-e6933bbf892a93c6.d: examples/resilient_matmul.rs

/root/repo/target/debug/examples/resilient_matmul-e6933bbf892a93c6: examples/resilient_matmul.rs

examples/resilient_matmul.rs:
