/root/repo/target/debug/examples/storage_correction-9627c7cab9d67f82.d: examples/storage_correction.rs

/root/repo/target/debug/examples/storage_correction-9627c7cab9d67f82: examples/storage_correction.rs

examples/storage_correction.rs:
