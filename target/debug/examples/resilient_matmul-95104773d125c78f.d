/root/repo/target/debug/examples/resilient_matmul-95104773d125c78f.d: examples/resilient_matmul.rs Cargo.toml

/root/repo/target/debug/examples/libresilient_matmul-95104773d125c78f.rmeta: examples/resilient_matmul.rs Cargo.toml

examples/resilient_matmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
