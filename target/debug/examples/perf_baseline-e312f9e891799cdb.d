/root/repo/target/debug/examples/perf_baseline-e312f9e891799cdb.d: crates/bench/examples/perf_baseline.rs

/root/repo/target/debug/examples/perf_baseline-e312f9e891799cdb: crates/bench/examples/perf_baseline.rs

crates/bench/examples/perf_baseline.rs:
