/root/repo/target/debug/examples/predictor_design_space-0bde86e3f17a5e12.d: examples/predictor_design_space.rs

/root/repo/target/debug/examples/predictor_design_space-0bde86e3f17a5e12: examples/predictor_design_space.rs

examples/predictor_design_space.rs:
