/root/repo/target/debug/examples/storage_correction-5e19559fa1625d08.d: examples/storage_correction.rs

/root/repo/target/debug/examples/storage_correction-5e19559fa1625d08: examples/storage_correction.rs

examples/storage_correction.rs:
