/root/repo/target/debug/examples/quickstart-8dd563cf8ec969ad.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8dd563cf8ec969ad: examples/quickstart.rs

examples/quickstart.rs:
