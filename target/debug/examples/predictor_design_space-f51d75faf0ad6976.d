/root/repo/target/debug/examples/predictor_design_space-f51d75faf0ad6976.d: examples/predictor_design_space.rs

/root/repo/target/debug/examples/predictor_design_space-f51d75faf0ad6976: examples/predictor_design_space.rs

examples/predictor_design_space.rs:
