/root/repo/target/debug/examples/_dump_bfs-4fd639fd7df7511a.d: examples/_dump_bfs.rs

/root/repo/target/debug/examples/_dump_bfs-4fd639fd7df7511a: examples/_dump_bfs.rs

examples/_dump_bfs.rs:
