/root/repo/target/debug/deps/swapcodes_bench-aa705493a44c6ae9.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libswapcodes_bench-aa705493a44c6ae9.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libswapcodes_bench-aa705493a44c6ae9.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
