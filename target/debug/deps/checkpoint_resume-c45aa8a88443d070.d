/root/repo/target/debug/deps/checkpoint_resume-c45aa8a88443d070.d: crates/inject/tests/checkpoint_resume.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_resume-c45aa8a88443d070.rmeta: crates/inject/tests/checkpoint_resume.rs Cargo.toml

crates/inject/tests/checkpoint_resume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
