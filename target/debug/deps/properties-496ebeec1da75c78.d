/root/repo/target/debug/deps/properties-496ebeec1da75c78.d: crates/ecc/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-496ebeec1da75c78.rmeta: crates/ecc/tests/properties.rs Cargo.toml

crates/ecc/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
