/root/repo/target/debug/deps/fig15_interthread-13943ef9a842f0ef.d: crates/bench/benches/fig15_interthread.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_interthread-13943ef9a842f0ef.rmeta: crates/bench/benches/fig15_interthread.rs Cargo.toml

crates/bench/benches/fig15_interthread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
