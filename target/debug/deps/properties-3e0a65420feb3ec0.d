/root/repo/target/debug/deps/properties-3e0a65420feb3ec0.d: crates/isa/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3e0a65420feb3ec0.rmeta: crates/isa/tests/properties.rs Cargo.toml

crates/isa/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
