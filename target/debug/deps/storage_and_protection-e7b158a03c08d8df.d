/root/repo/target/debug/deps/storage_and_protection-e7b158a03c08d8df.d: tests/storage_and_protection.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_and_protection-e7b158a03c08d8df.rmeta: tests/storage_and_protection.rs Cargo.toml

tests/storage_and_protection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
