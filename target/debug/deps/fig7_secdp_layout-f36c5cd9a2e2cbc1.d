/root/repo/target/debug/deps/fig7_secdp_layout-f36c5cd9a2e2cbc1.d: crates/bench/benches/fig7_secdp_layout.rs

/root/repo/target/debug/deps/fig7_secdp_layout-f36c5cd9a2e2cbc1: crates/bench/benches/fig7_secdp_layout.rs

crates/bench/benches/fig7_secdp_layout.rs:
