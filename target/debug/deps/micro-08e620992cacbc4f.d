/root/repo/target/debug/deps/micro-08e620992cacbc4f.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-08e620992cacbc4f: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
