/root/repo/target/debug/deps/swapcodes_inject-2b6529d27bfddd07.d: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/debug/deps/libswapcodes_inject-2b6529d27bfddd07.rlib: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/debug/deps/libswapcodes_inject-2b6529d27bfddd07.rmeta: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

crates/inject/src/lib.rs:
crates/inject/src/arch.rs:
crates/inject/src/detection.rs:
crates/inject/src/gate.rs:
crates/inject/src/stats.rs:
crates/inject/src/trace.rs:
