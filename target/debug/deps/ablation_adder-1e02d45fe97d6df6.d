/root/repo/target/debug/deps/ablation_adder-1e02d45fe97d6df6.d: crates/bench/benches/ablation_adder.rs Cargo.toml

/root/repo/target/debug/deps/libablation_adder-1e02d45fe97d6df6.rmeta: crates/bench/benches/ablation_adder.rs Cargo.toml

crates/bench/benches/ablation_adder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
