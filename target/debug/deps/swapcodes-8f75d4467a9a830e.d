/root/repo/target/debug/deps/swapcodes-8f75d4467a9a830e.d: src/lib.rs

/root/repo/target/debug/deps/swapcodes-8f75d4467a9a830e: src/lib.rs

src/lib.rs:
