/root/repo/target/debug/deps/fig14_power_energy-85afcefba95a0acb.d: crates/bench/benches/fig14_power_energy.rs

/root/repo/target/debug/deps/fig14_power_energy-85afcefba95a0acb: crates/bench/benches/fig14_power_energy.rs

crates/bench/benches/fig14_power_energy.rs:
