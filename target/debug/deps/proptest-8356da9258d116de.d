/root/repo/target/debug/deps/proptest-8356da9258d116de.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-8356da9258d116de: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
