/root/repo/target/debug/deps/storage_and_protection-cef54237fc0bd5e5.d: tests/storage_and_protection.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_and_protection-cef54237fc0bd5e5.rmeta: tests/storage_and_protection.rs Cargo.toml

tests/storage_and_protection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
