/root/repo/target/debug/deps/sweep_matches_serial-e465af2cb26a824a.d: crates/bench/tests/sweep_matches_serial.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_matches_serial-e465af2cb26a824a.rmeta: crates/bench/tests/sweep_matches_serial.rs Cargo.toml

crates/bench/tests/sweep_matches_serial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
