/root/repo/target/debug/deps/properties-d80d6056c841d5b0.d: crates/gates/tests/properties.rs

/root/repo/target/debug/deps/properties-d80d6056c841d5b0: crates/gates/tests/properties.rs

crates/gates/tests/properties.rs:
