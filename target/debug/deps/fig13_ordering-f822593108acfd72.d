/root/repo/target/debug/deps/fig13_ordering-f822593108acfd72.d: tests/fig13_ordering.rs

/root/repo/target/debug/deps/fig13_ordering-f822593108acfd72: tests/fig13_ordering.rs

tests/fig13_ordering.rs:
