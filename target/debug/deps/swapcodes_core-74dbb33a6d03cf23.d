/root/repo/target/debug/deps/swapcodes_core-74dbb33a6d03cf23.d: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

/root/repo/target/debug/deps/libswapcodes_core-74dbb33a6d03cf23.rmeta: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

crates/core/src/lib.rs:
crates/core/src/interthread.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/swapecc.rs:
crates/core/src/swdup.rs:
