/root/repo/target/debug/deps/swapcodes_gates-8bc50e0ae262f016.d: crates/gates/src/lib.rs crates/gates/src/area.rs crates/gates/src/builder.rs crates/gates/src/netlist.rs crates/gates/src/optimize.rs crates/gates/src/softfloat.rs crates/gates/src/units/mod.rs crates/gates/src/units/codec.rs crates/gates/src/units/fp.rs crates/gates/src/units/fxp.rs

/root/repo/target/debug/deps/libswapcodes_gates-8bc50e0ae262f016.rmeta: crates/gates/src/lib.rs crates/gates/src/area.rs crates/gates/src/builder.rs crates/gates/src/netlist.rs crates/gates/src/optimize.rs crates/gates/src/softfloat.rs crates/gates/src/units/mod.rs crates/gates/src/units/codec.rs crates/gates/src/units/fp.rs crates/gates/src/units/fxp.rs

crates/gates/src/lib.rs:
crates/gates/src/area.rs:
crates/gates/src/builder.rs:
crates/gates/src/netlist.rs:
crates/gates/src/optimize.rs:
crates/gates/src/softfloat.rs:
crates/gates/src/units/mod.rs:
crates/gates/src/units/codec.rs:
crates/gates/src/units/fp.rs:
crates/gates/src/units/fxp.rs:
