/root/repo/target/debug/deps/proptest-7b18d34db392a76b.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-7b18d34db392a76b.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
