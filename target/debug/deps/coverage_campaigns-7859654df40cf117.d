/root/repo/target/debug/deps/coverage_campaigns-7859654df40cf117.d: tests/coverage_campaigns.rs

/root/repo/target/debug/deps/coverage_campaigns-7859654df40cf117: tests/coverage_campaigns.rs

tests/coverage_campaigns.rs:
