/root/repo/target/debug/deps/swapcodes-671cde9864129480.d: src/lib.rs

/root/repo/target/debug/deps/libswapcodes-671cde9864129480.rlib: src/lib.rs

/root/repo/target/debug/deps/libswapcodes-671cde9864129480.rmeta: src/lib.rs

src/lib.rs:
