/root/repo/target/debug/deps/swapcodes_ecc-8f5ebeed21001186.d: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/parity.rs crates/ecc/src/layout.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs

/root/repo/target/debug/deps/swapcodes_ecc-8f5ebeed21001186: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/parity.rs crates/ecc/src/layout.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs

crates/ecc/src/lib.rs:
crates/ecc/src/analysis.rs:
crates/ecc/src/code.rs:
crates/ecc/src/hamming.rs:
crates/ecc/src/hsiao.rs:
crates/ecc/src/parity.rs:
crates/ecc/src/layout.rs:
crates/ecc/src/report.rs:
crates/ecc/src/residue.rs:
crates/ecc/src/swap.rs:
