/root/repo/target/debug/deps/simt_semantics-def2f99f32640e50.d: tests/simt_semantics.rs

/root/repo/target/debug/deps/simt_semantics-def2f99f32640e50: tests/simt_semantics.rs

tests/simt_semantics.rs:
