/root/repo/target/debug/deps/swapcodes_inject-b93bf35793dc8f0d.d: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/debug/deps/libswapcodes_inject-b93bf35793dc8f0d.rlib: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/debug/deps/libswapcodes_inject-b93bf35793dc8f0d.rmeta: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

crates/inject/src/lib.rs:
crates/inject/src/arch.rs:
crates/inject/src/detection.rs:
crates/inject/src/gate.rs:
crates/inject/src/harness.rs:
crates/inject/src/stats.rs:
crates/inject/src/trace.rs:
