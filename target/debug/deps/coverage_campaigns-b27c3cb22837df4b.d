/root/repo/target/debug/deps/coverage_campaigns-b27c3cb22837df4b.d: tests/coverage_campaigns.rs

/root/repo/target/debug/deps/coverage_campaigns-b27c3cb22837df4b: tests/coverage_campaigns.rs

tests/coverage_campaigns.rs:
