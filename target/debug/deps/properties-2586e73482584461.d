/root/repo/target/debug/deps/properties-2586e73482584461.d: crates/gates/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2586e73482584461.rmeta: crates/gates/tests/properties.rs Cargo.toml

crates/gates/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
