/root/repo/target/debug/deps/fig10_error_patterns-39b606e0bb525e0b.d: crates/bench/benches/fig10_error_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_error_patterns-39b606e0bb525e0b.rmeta: crates/bench/benches/fig10_error_patterns.rs Cargo.toml

crates/bench/benches/fig10_error_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
