/root/repo/target/debug/deps/fig16_future_predictors-99a14a98f78611a8.d: crates/bench/benches/fig16_future_predictors.rs

/root/repo/target/debug/deps/fig16_future_predictors-99a14a98f78611a8: crates/bench/benches/fig16_future_predictors.rs

crates/bench/benches/fig16_future_predictors.rs:
