/root/repo/target/debug/deps/fueled_executor-4ff914b81e6163b4.d: tests/fueled_executor.rs

/root/repo/target/debug/deps/fueled_executor-4ff914b81e6163b4: tests/fueled_executor.rs

tests/fueled_executor.rs:
