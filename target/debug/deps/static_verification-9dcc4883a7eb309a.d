/root/repo/target/debug/deps/static_verification-9dcc4883a7eb309a.d: tests/static_verification.rs Cargo.toml

/root/repo/target/debug/deps/libstatic_verification-9dcc4883a7eb309a.rmeta: tests/static_verification.rs Cargo.toml

tests/static_verification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
