/root/repo/target/debug/deps/fig14_power_energy-7c66ca608ae8248e.d: crates/bench/benches/fig14_power_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_power_energy-7c66ca608ae8248e.rmeta: crates/bench/benches/fig14_power_energy.rs Cargo.toml

crates/bench/benches/fig14_power_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
