/root/repo/target/debug/deps/clean_transforms-7b61bdbcc2a21461.d: crates/verify/tests/clean_transforms.rs

/root/repo/target/debug/deps/clean_transforms-7b61bdbcc2a21461: crates/verify/tests/clean_transforms.rs

crates/verify/tests/clean_transforms.rs:
