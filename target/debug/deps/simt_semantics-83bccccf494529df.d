/root/repo/target/debug/deps/simt_semantics-83bccccf494529df.d: tests/simt_semantics.rs

/root/repo/target/debug/deps/simt_semantics-83bccccf494529df: tests/simt_semantics.rs

tests/simt_semantics.rs:
