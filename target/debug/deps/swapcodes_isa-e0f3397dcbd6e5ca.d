/root/repo/target/debug/deps/swapcodes_isa-e0f3397dcbd6e5ca.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

/root/repo/target/debug/deps/libswapcodes_isa-e0f3397dcbd6e5ca.rmeta: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/op.rs:
crates/isa/src/reg.rs:
crates/isa/src/validate.rs:
