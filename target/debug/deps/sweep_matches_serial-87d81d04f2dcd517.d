/root/repo/target/debug/deps/sweep_matches_serial-87d81d04f2dcd517.d: crates/bench/tests/sweep_matches_serial.rs

/root/repo/target/debug/deps/sweep_matches_serial-87d81d04f2dcd517: crates/bench/tests/sweep_matches_serial.rs

crates/bench/tests/sweep_matches_serial.rs:
