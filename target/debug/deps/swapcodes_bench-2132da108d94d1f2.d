/root/repo/target/debug/deps/swapcodes_bench-2132da108d94d1f2.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libswapcodes_bench-2132da108d94d1f2.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libswapcodes_bench-2132da108d94d1f2.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
