/root/repo/target/debug/deps/static_coverage-bebdfd08894d72ec.d: crates/bench/benches/static_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libstatic_coverage-bebdfd08894d72ec.rmeta: crates/bench/benches/static_coverage.rs Cargo.toml

crates/bench/benches/static_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
