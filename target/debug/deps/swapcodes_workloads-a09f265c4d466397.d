/root/repo/target/debug/deps/swapcodes_workloads-a09f265c4d466397.d: crates/workloads/src/lib.rs crates/workloads/src/backprop.rs crates/workloads/src/bfs.rs crates/workloads/src/btree.rs crates/workloads/src/gaussian.rs crates/workloads/src/heartwall.rs crates/workloads/src/hotspot.rs crates/workloads/src/kmeans.rs crates/workloads/src/lavamd.rs crates/workloads/src/lud.rs crates/workloads/src/matmul.rs crates/workloads/src/mummer.rs crates/workloads/src/needle.rs crates/workloads/src/pathfinder.rs crates/workloads/src/snap.rs crates/workloads/src/srad.rs crates/workloads/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_workloads-a09f265c4d466397.rmeta: crates/workloads/src/lib.rs crates/workloads/src/backprop.rs crates/workloads/src/bfs.rs crates/workloads/src/btree.rs crates/workloads/src/gaussian.rs crates/workloads/src/heartwall.rs crates/workloads/src/hotspot.rs crates/workloads/src/kmeans.rs crates/workloads/src/lavamd.rs crates/workloads/src/lud.rs crates/workloads/src/matmul.rs crates/workloads/src/mummer.rs crates/workloads/src/needle.rs crates/workloads/src/pathfinder.rs crates/workloads/src/snap.rs crates/workloads/src/srad.rs crates/workloads/src/util.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/backprop.rs:
crates/workloads/src/bfs.rs:
crates/workloads/src/btree.rs:
crates/workloads/src/gaussian.rs:
crates/workloads/src/heartwall.rs:
crates/workloads/src/hotspot.rs:
crates/workloads/src/kmeans.rs:
crates/workloads/src/lavamd.rs:
crates/workloads/src/lud.rs:
crates/workloads/src/matmul.rs:
crates/workloads/src/mummer.rs:
crates/workloads/src/needle.rs:
crates/workloads/src/pathfinder.rs:
crates/workloads/src/snap.rs:
crates/workloads/src/srad.rs:
crates/workloads/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
