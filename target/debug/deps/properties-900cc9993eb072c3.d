/root/repo/target/debug/deps/properties-900cc9993eb072c3.d: crates/isa/tests/properties.rs

/root/repo/target/debug/deps/properties-900cc9993eb072c3: crates/isa/tests/properties.rs

crates/isa/tests/properties.rs:
