/root/repo/target/debug/deps/swapcodes_core-020697ea8bc9851f.d: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_core-020697ea8bc9851f.rmeta: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/interthread.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/swapecc.rs:
crates/core/src/swdup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
