/root/repo/target/debug/deps/coverage_campaigns-5f1fa8d3bfb37a14.d: tests/coverage_campaigns.rs

/root/repo/target/debug/deps/coverage_campaigns-5f1fa8d3bfb37a14: tests/coverage_campaigns.rs

tests/coverage_campaigns.rs:
