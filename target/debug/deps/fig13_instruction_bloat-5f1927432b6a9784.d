/root/repo/target/debug/deps/fig13_instruction_bloat-5f1927432b6a9784.d: crates/bench/benches/fig13_instruction_bloat.rs

/root/repo/target/debug/deps/fig13_instruction_bloat-5f1927432b6a9784: crates/bench/benches/fig13_instruction_bloat.rs

crates/bench/benches/fig13_instruction_bloat.rs:
