/root/repo/target/debug/deps/swapcodes_ecc-b0ce604cc1e730c6.d: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/layout.rs crates/ecc/src/parity.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs

/root/repo/target/debug/deps/libswapcodes_ecc-b0ce604cc1e730c6.rmeta: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/layout.rs crates/ecc/src/parity.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs

crates/ecc/src/lib.rs:
crates/ecc/src/analysis.rs:
crates/ecc/src/code.rs:
crates/ecc/src/hamming.rs:
crates/ecc/src/hsiao.rs:
crates/ecc/src/layout.rs:
crates/ecc/src/parity.rs:
crates/ecc/src/report.rs:
crates/ecc/src/residue.rs:
crates/ecc/src/swap.rs:
