/root/repo/target/debug/deps/known_bad-7190377b501c1dfd.d: crates/verify/tests/known_bad.rs

/root/repo/target/debug/deps/known_bad-7190377b501c1dfd: crates/verify/tests/known_bad.rs

crates/verify/tests/known_bad.rs:
