/root/repo/target/debug/deps/fig10_error_patterns-d8b53969f989498e.d: crates/bench/benches/fig10_error_patterns.rs

/root/repo/target/debug/deps/fig10_error_patterns-d8b53969f989498e: crates/bench/benches/fig10_error_patterns.rs

crates/bench/benches/fig10_error_patterns.rs:
