/root/repo/target/debug/deps/ablation_adder-9f2fc00c2de638d8.d: crates/bench/benches/ablation_adder.rs

/root/repo/target/debug/deps/ablation_adder-9f2fc00c2de638d8: crates/bench/benches/ablation_adder.rs

crates/bench/benches/ablation_adder.rs:
