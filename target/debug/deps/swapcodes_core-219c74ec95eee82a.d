/root/repo/target/debug/deps/swapcodes_core-219c74ec95eee82a.d: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

/root/repo/target/debug/deps/libswapcodes_core-219c74ec95eee82a.rlib: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

/root/repo/target/debug/deps/libswapcodes_core-219c74ec95eee82a.rmeta: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

crates/core/src/lib.rs:
crates/core/src/interthread.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/swapecc.rs:
crates/core/src/swdup.rs:
