/root/repo/target/debug/deps/fig13_instruction_bloat-b9473a5d92752606.d: crates/bench/benches/fig13_instruction_bloat.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_instruction_bloat-b9473a5d92752606.rmeta: crates/bench/benches/fig13_instruction_bloat.rs Cargo.toml

crates/bench/benches/fig13_instruction_bloat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
