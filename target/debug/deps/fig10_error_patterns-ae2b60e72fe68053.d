/root/repo/target/debug/deps/fig10_error_patterns-ae2b60e72fe68053.d: crates/bench/benches/fig10_error_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_error_patterns-ae2b60e72fe68053.rmeta: crates/bench/benches/fig10_error_patterns.rs Cargo.toml

crates/bench/benches/fig10_error_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
