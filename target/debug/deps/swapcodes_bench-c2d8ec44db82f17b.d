/root/repo/target/debug/deps/swapcodes_bench-c2d8ec44db82f17b.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_bench-c2d8ec44db82f17b.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
