/root/repo/target/debug/deps/swapcodes_bench-42050d2b727d2afd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libswapcodes_bench-42050d2b727d2afd.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libswapcodes_bench-42050d2b727d2afd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
