/root/repo/target/debug/deps/table4_area-65f97615d14c1e9d.d: crates/bench/benches/table4_area.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_area-65f97615d14c1e9d.rmeta: crates/bench/benches/table4_area.rs Cargo.toml

crates/bench/benches/table4_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
