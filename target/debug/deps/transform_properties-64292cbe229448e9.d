/root/repo/target/debug/deps/transform_properties-64292cbe229448e9.d: crates/core/tests/transform_properties.rs

/root/repo/target/debug/deps/transform_properties-64292cbe229448e9: crates/core/tests/transform_properties.rs

crates/core/tests/transform_properties.rs:
