/root/repo/target/debug/deps/sweep_matches_serial-83eb74b8a677b58c.d: crates/bench/tests/sweep_matches_serial.rs

/root/repo/target/debug/deps/sweep_matches_serial-83eb74b8a677b58c: crates/bench/tests/sweep_matches_serial.rs

crates/bench/tests/sweep_matches_serial.rs:
