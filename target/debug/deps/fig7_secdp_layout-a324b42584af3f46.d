/root/repo/target/debug/deps/fig7_secdp_layout-a324b42584af3f46.d: crates/bench/benches/fig7_secdp_layout.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_secdp_layout-a324b42584af3f46.rmeta: crates/bench/benches/fig7_secdp_layout.rs Cargo.toml

crates/bench/benches/fig7_secdp_layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
