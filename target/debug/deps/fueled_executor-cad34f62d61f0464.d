/root/repo/target/debug/deps/fueled_executor-cad34f62d61f0464.d: tests/fueled_executor.rs Cargo.toml

/root/repo/target/debug/deps/libfueled_executor-cad34f62d61f0464.rmeta: tests/fueled_executor.rs Cargo.toml

tests/fueled_executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
