/root/repo/target/debug/deps/swapcodes_inject-f1220058bc567028.d: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/oracle.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/debug/deps/swapcodes_inject-f1220058bc567028: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/oracle.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

crates/inject/src/lib.rs:
crates/inject/src/arch.rs:
crates/inject/src/detection.rs:
crates/inject/src/gate.rs:
crates/inject/src/harness.rs:
crates/inject/src/oracle.rs:
crates/inject/src/stats.rs:
crates/inject/src/trace.rs:
