/root/repo/target/debug/deps/micro-c52c2f42e7bf806c.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-c52c2f42e7bf806c.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
