/root/repo/target/debug/deps/fig11_sdc_risk-5303ea055b3c29d2.d: crates/bench/benches/fig11_sdc_risk.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_sdc_risk-5303ea055b3c29d2.rmeta: crates/bench/benches/fig11_sdc_risk.rs Cargo.toml

crates/bench/benches/fig11_sdc_risk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
