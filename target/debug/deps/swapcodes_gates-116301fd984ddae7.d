/root/repo/target/debug/deps/swapcodes_gates-116301fd984ddae7.d: crates/gates/src/lib.rs crates/gates/src/area.rs crates/gates/src/builder.rs crates/gates/src/netlist.rs crates/gates/src/optimize.rs crates/gates/src/softfloat.rs crates/gates/src/units/mod.rs crates/gates/src/units/codec.rs crates/gates/src/units/fp.rs crates/gates/src/units/fxp.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_gates-116301fd984ddae7.rmeta: crates/gates/src/lib.rs crates/gates/src/area.rs crates/gates/src/builder.rs crates/gates/src/netlist.rs crates/gates/src/optimize.rs crates/gates/src/softfloat.rs crates/gates/src/units/mod.rs crates/gates/src/units/codec.rs crates/gates/src/units/fp.rs crates/gates/src/units/fxp.rs Cargo.toml

crates/gates/src/lib.rs:
crates/gates/src/area.rs:
crates/gates/src/builder.rs:
crates/gates/src/netlist.rs:
crates/gates/src/optimize.rs:
crates/gates/src/softfloat.rs:
crates/gates/src/units/mod.rs:
crates/gates/src/units/codec.rs:
crates/gates/src/units/fp.rs:
crates/gates/src/units/fxp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
