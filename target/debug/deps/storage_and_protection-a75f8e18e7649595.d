/root/repo/target/debug/deps/storage_and_protection-a75f8e18e7649595.d: tests/storage_and_protection.rs

/root/repo/target/debug/deps/storage_and_protection-a75f8e18e7649595: tests/storage_and_protection.rs

tests/storage_and_protection.rs:
