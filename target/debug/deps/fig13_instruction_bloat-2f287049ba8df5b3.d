/root/repo/target/debug/deps/fig13_instruction_bloat-2f287049ba8df5b3.d: crates/bench/benches/fig13_instruction_bloat.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_instruction_bloat-2f287049ba8df5b3.rmeta: crates/bench/benches/fig13_instruction_bloat.rs Cargo.toml

crates/bench/benches/fig13_instruction_bloat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
