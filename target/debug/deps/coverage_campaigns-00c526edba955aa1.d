/root/repo/target/debug/deps/coverage_campaigns-00c526edba955aa1.d: tests/coverage_campaigns.rs Cargo.toml

/root/repo/target/debug/deps/libcoverage_campaigns-00c526edba955aa1.rmeta: tests/coverage_campaigns.rs Cargo.toml

tests/coverage_campaigns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
