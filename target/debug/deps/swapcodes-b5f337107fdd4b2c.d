/root/repo/target/debug/deps/swapcodes-b5f337107fdd4b2c.d: src/lib.rs

/root/repo/target/debug/deps/swapcodes-b5f337107fdd4b2c: src/lib.rs

src/lib.rs:
