/root/repo/target/debug/deps/simt_semantics-d75228334d62ccac.d: tests/simt_semantics.rs

/root/repo/target/debug/deps/simt_semantics-d75228334d62ccac: tests/simt_semantics.rs

tests/simt_semantics.rs:
