/root/repo/target/debug/deps/fig12_performance-78d05bd023102abf.d: crates/bench/benches/fig12_performance.rs

/root/repo/target/debug/deps/fig12_performance-78d05bd023102abf: crates/bench/benches/fig12_performance.rs

crates/bench/benches/fig12_performance.rs:
