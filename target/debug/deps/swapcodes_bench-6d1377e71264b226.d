/root/repo/target/debug/deps/swapcodes_bench-6d1377e71264b226.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/swapcodes_bench-6d1377e71264b226: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
