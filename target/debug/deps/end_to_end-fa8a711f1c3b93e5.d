/root/repo/target/debug/deps/end_to_end-fa8a711f1c3b93e5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-fa8a711f1c3b93e5: tests/end_to_end.rs

tests/end_to_end.rs:
