/root/repo/target/debug/deps/swapcodes_verify-ec6f86b78b593fbe.d: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

/root/repo/target/debug/deps/libswapcodes_verify-ec6f86b78b593fbe.rlib: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

/root/repo/target/debug/deps/libswapcodes_verify-ec6f86b78b593fbe.rmeta: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

crates/verify/src/lib.rs:
crates/verify/src/cfg.rs:
crates/verify/src/dataflow.rs:
crates/verify/src/interthread.rs:
crates/verify/src/swapecc.rs:
crates/verify/src/swdup.rs:
