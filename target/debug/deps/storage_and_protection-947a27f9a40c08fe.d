/root/repo/target/debug/deps/storage_and_protection-947a27f9a40c08fe.d: tests/storage_and_protection.rs

/root/repo/target/debug/deps/storage_and_protection-947a27f9a40c08fe: tests/storage_and_protection.rs

tests/storage_and_protection.rs:
