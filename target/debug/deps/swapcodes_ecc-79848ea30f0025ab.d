/root/repo/target/debug/deps/swapcodes_ecc-79848ea30f0025ab.d: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/layout.rs crates/ecc/src/parity.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs

/root/repo/target/debug/deps/libswapcodes_ecc-79848ea30f0025ab.rlib: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/layout.rs crates/ecc/src/parity.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs

/root/repo/target/debug/deps/libswapcodes_ecc-79848ea30f0025ab.rmeta: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/layout.rs crates/ecc/src/parity.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs

crates/ecc/src/lib.rs:
crates/ecc/src/analysis.rs:
crates/ecc/src/code.rs:
crates/ecc/src/hamming.rs:
crates/ecc/src/hsiao.rs:
crates/ecc/src/layout.rs:
crates/ecc/src/parity.rs:
crates/ecc/src/report.rs:
crates/ecc/src/residue.rs:
crates/ecc/src/swap.rs:
