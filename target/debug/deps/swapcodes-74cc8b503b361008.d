/root/repo/target/debug/deps/swapcodes-74cc8b503b361008.d: src/lib.rs

/root/repo/target/debug/deps/libswapcodes-74cc8b503b361008.rlib: src/lib.rs

/root/repo/target/debug/deps/libswapcodes-74cc8b503b361008.rmeta: src/lib.rs

src/lib.rs:
