/root/repo/target/debug/deps/swapcodes_bench-32089e1c91c53eb6.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/swapcodes_bench-32089e1c91c53eb6: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
