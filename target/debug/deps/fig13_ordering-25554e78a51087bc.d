/root/repo/target/debug/deps/fig13_ordering-25554e78a51087bc.d: tests/fig13_ordering.rs

/root/repo/target/debug/deps/fig13_ordering-25554e78a51087bc: tests/fig13_ordering.rs

tests/fig13_ordering.rs:
