/root/repo/target/debug/deps/sweep_matches_serial-29bd8d263c6db1a0.d: crates/bench/tests/sweep_matches_serial.rs

/root/repo/target/debug/deps/sweep_matches_serial-29bd8d263c6db1a0: crates/bench/tests/sweep_matches_serial.rs

crates/bench/tests/sweep_matches_serial.rs:
