/root/repo/target/debug/deps/swapcodes-6786e0662bbac75d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes-6786e0662bbac75d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
