/root/repo/target/debug/deps/swapcodes_bench-83da8d2a6626946e.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/swapcodes_bench-83da8d2a6626946e: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
