/root/repo/target/debug/deps/swapcodes_isa-5a67c582b147a974.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

/root/repo/target/debug/deps/swapcodes_isa-5a67c582b147a974: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/op.rs:
crates/isa/src/reg.rs:
crates/isa/src/validate.rs:
