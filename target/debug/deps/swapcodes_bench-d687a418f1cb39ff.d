/root/repo/target/debug/deps/swapcodes_bench-d687a418f1cb39ff.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libswapcodes_bench-d687a418f1cb39ff.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libswapcodes_bench-d687a418f1cb39ff.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
