/root/repo/target/debug/deps/simt_semantics-48b62179df51a1fb.d: tests/simt_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsimt_semantics-48b62179df51a1fb.rmeta: tests/simt_semantics.rs Cargo.toml

tests/simt_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
