/root/repo/target/debug/deps/transform_properties-72f74699bf22b72f.d: crates/core/tests/transform_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtransform_properties-72f74699bf22b72f.rmeta: crates/core/tests/transform_properties.rs Cargo.toml

crates/core/tests/transform_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
