/root/repo/target/debug/deps/transform_properties-901d5040d2518359.d: crates/core/tests/transform_properties.rs

/root/repo/target/debug/deps/transform_properties-901d5040d2518359: crates/core/tests/transform_properties.rs

crates/core/tests/transform_properties.rs:
