/root/repo/target/debug/deps/swapcodes-527b80cdd4ddea9c.d: src/lib.rs

/root/repo/target/debug/deps/libswapcodes-527b80cdd4ddea9c.rlib: src/lib.rs

/root/repo/target/debug/deps/libswapcodes-527b80cdd4ddea9c.rmeta: src/lib.rs

src/lib.rs:
