/root/repo/target/debug/deps/sweep_matches_serial-b11e1970e311e6fa.d: crates/bench/tests/sweep_matches_serial.rs

/root/repo/target/debug/deps/sweep_matches_serial-b11e1970e311e6fa: crates/bench/tests/sweep_matches_serial.rs

crates/bench/tests/sweep_matches_serial.rs:
