/root/repo/target/debug/deps/swapcodes_inject-53be7f0d526d7808.d: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/debug/deps/libswapcodes_inject-53be7f0d526d7808.rlib: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/debug/deps/libswapcodes_inject-53be7f0d526d7808.rmeta: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

crates/inject/src/lib.rs:
crates/inject/src/arch.rs:
crates/inject/src/detection.rs:
crates/inject/src/gate.rs:
crates/inject/src/stats.rs:
crates/inject/src/trace.rs:
