/root/repo/target/debug/deps/swapcodes_inject-be3e8fa5ed00bf79.d: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/debug/deps/libswapcodes_inject-be3e8fa5ed00bf79.rlib: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/debug/deps/libswapcodes_inject-be3e8fa5ed00bf79.rmeta: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

crates/inject/src/lib.rs:
crates/inject/src/arch.rs:
crates/inject/src/detection.rs:
crates/inject/src/gate.rs:
crates/inject/src/harness.rs:
crates/inject/src/stats.rs:
crates/inject/src/trace.rs:
