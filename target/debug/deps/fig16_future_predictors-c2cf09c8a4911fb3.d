/root/repo/target/debug/deps/fig16_future_predictors-c2cf09c8a4911fb3.d: crates/bench/benches/fig16_future_predictors.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_future_predictors-c2cf09c8a4911fb3.rmeta: crates/bench/benches/fig16_future_predictors.rs Cargo.toml

crates/bench/benches/fig16_future_predictors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
