/root/repo/target/debug/deps/swapcodes_isa-0a6bcd99216fbb3b.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

/root/repo/target/debug/deps/libswapcodes_isa-0a6bcd99216fbb3b.rlib: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

/root/repo/target/debug/deps/libswapcodes_isa-0a6bcd99216fbb3b.rmeta: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/op.rs:
crates/isa/src/reg.rs:
crates/isa/src/validate.rs:
