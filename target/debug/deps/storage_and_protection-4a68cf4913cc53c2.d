/root/repo/target/debug/deps/storage_and_protection-4a68cf4913cc53c2.d: tests/storage_and_protection.rs

/root/repo/target/debug/deps/storage_and_protection-4a68cf4913cc53c2: tests/storage_and_protection.rs

tests/storage_and_protection.rs:
