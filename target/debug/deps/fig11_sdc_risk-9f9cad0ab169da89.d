/root/repo/target/debug/deps/fig11_sdc_risk-9f9cad0ab169da89.d: crates/bench/benches/fig11_sdc_risk.rs

/root/repo/target/debug/deps/fig11_sdc_risk-9f9cad0ab169da89: crates/bench/benches/fig11_sdc_risk.rs

crates/bench/benches/fig11_sdc_risk.rs:
