/root/repo/target/debug/deps/clean_transforms-90102c39d0e3f733.d: crates/verify/tests/clean_transforms.rs Cargo.toml

/root/repo/target/debug/deps/libclean_transforms-90102c39d0e3f733.rmeta: crates/verify/tests/clean_transforms.rs Cargo.toml

crates/verify/tests/clean_transforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
