/root/repo/target/debug/deps/fig13_ordering-142de3849da67c1f.d: tests/fig13_ordering.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_ordering-142de3849da67c1f.rmeta: tests/fig13_ordering.rs Cargo.toml

tests/fig13_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
