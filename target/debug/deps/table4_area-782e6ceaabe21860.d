/root/repo/target/debug/deps/table4_area-782e6ceaabe21860.d: crates/bench/benches/table4_area.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_area-782e6ceaabe21860.rmeta: crates/bench/benches/table4_area.rs Cargo.toml

crates/bench/benches/table4_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
