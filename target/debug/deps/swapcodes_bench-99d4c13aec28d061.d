/root/repo/target/debug/deps/swapcodes_bench-99d4c13aec28d061.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_bench-99d4c13aec28d061.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
