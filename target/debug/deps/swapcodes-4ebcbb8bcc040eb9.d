/root/repo/target/debug/deps/swapcodes-4ebcbb8bcc040eb9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes-4ebcbb8bcc040eb9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
