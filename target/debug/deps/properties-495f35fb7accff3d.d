/root/repo/target/debug/deps/properties-495f35fb7accff3d.d: crates/ecc/tests/properties.rs

/root/repo/target/debug/deps/properties-495f35fb7accff3d: crates/ecc/tests/properties.rs

crates/ecc/tests/properties.rs:
