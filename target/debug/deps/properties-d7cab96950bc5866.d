/root/repo/target/debug/deps/properties-d7cab96950bc5866.d: crates/isa/tests/properties.rs

/root/repo/target/debug/deps/properties-d7cab96950bc5866: crates/isa/tests/properties.rs

crates/isa/tests/properties.rs:
