/root/repo/target/debug/deps/end_to_end-0c5661640a61d200.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0c5661640a61d200: tests/end_to_end.rs

tests/end_to_end.rs:
