/root/repo/target/debug/deps/swapcodes_isa-4fe05bd6fda5670c.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

/root/repo/target/debug/deps/swapcodes_isa-4fe05bd6fda5670c: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/op.rs:
crates/isa/src/reg.rs:
crates/isa/src/validate.rs:
