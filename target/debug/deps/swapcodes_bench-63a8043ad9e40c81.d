/root/repo/target/debug/deps/swapcodes_bench-63a8043ad9e40c81.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/swapcodes_bench-63a8043ad9e40c81: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
