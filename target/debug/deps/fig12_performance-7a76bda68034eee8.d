/root/repo/target/debug/deps/fig12_performance-7a76bda68034eee8.d: crates/bench/benches/fig12_performance.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_performance-7a76bda68034eee8.rmeta: crates/bench/benches/fig12_performance.rs Cargo.toml

crates/bench/benches/fig12_performance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
