/root/repo/target/debug/deps/checkpoint_resume-e9e3c893bfa907db.d: crates/inject/tests/checkpoint_resume.rs

/root/repo/target/debug/deps/checkpoint_resume-e9e3c893bfa907db: crates/inject/tests/checkpoint_resume.rs

crates/inject/tests/checkpoint_resume.rs:
