/root/repo/target/debug/deps/swapcodes_sim-8f43a0fcc078d50e.d: crates/sim/src/lib.rs crates/sim/src/exec.rs crates/sim/src/fault.rs crates/sim/src/memory.rs crates/sim/src/occupancy.rs crates/sim/src/power.rs crates/sim/src/profiler.rs crates/sim/src/regfile.rs crates/sim/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_sim-8f43a0fcc078d50e.rmeta: crates/sim/src/lib.rs crates/sim/src/exec.rs crates/sim/src/fault.rs crates/sim/src/memory.rs crates/sim/src/occupancy.rs crates/sim/src/power.rs crates/sim/src/profiler.rs crates/sim/src/regfile.rs crates/sim/src/timing.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/exec.rs:
crates/sim/src/fault.rs:
crates/sim/src/memory.rs:
crates/sim/src/occupancy.rs:
crates/sim/src/power.rs:
crates/sim/src/profiler.rs:
crates/sim/src/regfile.rs:
crates/sim/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
