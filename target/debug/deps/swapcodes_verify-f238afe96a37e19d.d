/root/repo/target/debug/deps/swapcodes_verify-f238afe96a37e19d.d: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_verify-f238afe96a37e19d.rmeta: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/cfg.rs:
crates/verify/src/dataflow.rs:
crates/verify/src/interthread.rs:
crates/verify/src/swapecc.rs:
crates/verify/src/swdup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
