/root/repo/target/debug/deps/properties-aa90ec8e19a8e048.d: crates/isa/tests/properties.rs

/root/repo/target/debug/deps/properties-aa90ec8e19a8e048: crates/isa/tests/properties.rs

crates/isa/tests/properties.rs:
