/root/repo/target/debug/deps/properties-93400ab2749f8962.d: crates/ecc/tests/properties.rs

/root/repo/target/debug/deps/properties-93400ab2749f8962: crates/ecc/tests/properties.rs

crates/ecc/tests/properties.rs:
