/root/repo/target/debug/deps/known_bad-e3cf3cfe6479e6ac.d: crates/verify/tests/known_bad.rs Cargo.toml

/root/repo/target/debug/deps/libknown_bad-e3cf3cfe6479e6ac.rmeta: crates/verify/tests/known_bad.rs Cargo.toml

crates/verify/tests/known_bad.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
