/root/repo/target/debug/deps/swapcodes-2dcb7880b3d2e25e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes-2dcb7880b3d2e25e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
