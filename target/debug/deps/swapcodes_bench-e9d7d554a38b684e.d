/root/repo/target/debug/deps/swapcodes_bench-e9d7d554a38b684e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/swapcodes_bench-e9d7d554a38b684e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
