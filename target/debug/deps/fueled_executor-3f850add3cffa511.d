/root/repo/target/debug/deps/fueled_executor-3f850add3cffa511.d: tests/fueled_executor.rs Cargo.toml

/root/repo/target/debug/deps/libfueled_executor-3f850add3cffa511.rmeta: tests/fueled_executor.rs Cargo.toml

tests/fueled_executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
