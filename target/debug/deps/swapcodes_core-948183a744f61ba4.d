/root/repo/target/debug/deps/swapcodes_core-948183a744f61ba4.d: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

/root/repo/target/debug/deps/swapcodes_core-948183a744f61ba4: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

crates/core/src/lib.rs:
crates/core/src/interthread.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/swapecc.rs:
crates/core/src/swdup.rs:
