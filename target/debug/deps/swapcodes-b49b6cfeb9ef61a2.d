/root/repo/target/debug/deps/swapcodes-b49b6cfeb9ef61a2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes-b49b6cfeb9ef61a2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
