/root/repo/target/debug/deps/swapcodes_sim-0575f36695512ce3.d: crates/sim/src/lib.rs crates/sim/src/exec.rs crates/sim/src/fault.rs crates/sim/src/memory.rs crates/sim/src/occupancy.rs crates/sim/src/power.rs crates/sim/src/profiler.rs crates/sim/src/regfile.rs crates/sim/src/timing.rs

/root/repo/target/debug/deps/libswapcodes_sim-0575f36695512ce3.rmeta: crates/sim/src/lib.rs crates/sim/src/exec.rs crates/sim/src/fault.rs crates/sim/src/memory.rs crates/sim/src/occupancy.rs crates/sim/src/power.rs crates/sim/src/profiler.rs crates/sim/src/regfile.rs crates/sim/src/timing.rs

crates/sim/src/lib.rs:
crates/sim/src/exec.rs:
crates/sim/src/fault.rs:
crates/sim/src/memory.rs:
crates/sim/src/occupancy.rs:
crates/sim/src/power.rs:
crates/sim/src/profiler.rs:
crates/sim/src/regfile.rs:
crates/sim/src/timing.rs:
