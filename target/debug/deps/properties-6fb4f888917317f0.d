/root/repo/target/debug/deps/properties-6fb4f888917317f0.d: crates/gates/tests/properties.rs

/root/repo/target/debug/deps/properties-6fb4f888917317f0: crates/gates/tests/properties.rs

crates/gates/tests/properties.rs:
