/root/repo/target/debug/deps/swapcodes_verify-e2474d45d8be3529.d: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

/root/repo/target/debug/deps/libswapcodes_verify-e2474d45d8be3529.rmeta: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

crates/verify/src/lib.rs:
crates/verify/src/cfg.rs:
crates/verify/src/dataflow.rs:
crates/verify/src/interthread.rs:
crates/verify/src/swapecc.rs:
crates/verify/src/swdup.rs:
