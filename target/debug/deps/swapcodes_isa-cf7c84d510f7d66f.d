/root/repo/target/debug/deps/swapcodes_isa-cf7c84d510f7d66f.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

/root/repo/target/debug/deps/swapcodes_isa-cf7c84d510f7d66f: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/op.rs:
crates/isa/src/reg.rs:
crates/isa/src/validate.rs:
