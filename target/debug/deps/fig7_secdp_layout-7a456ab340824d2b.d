/root/repo/target/debug/deps/fig7_secdp_layout-7a456ab340824d2b.d: crates/bench/benches/fig7_secdp_layout.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_secdp_layout-7a456ab340824d2b.rmeta: crates/bench/benches/fig7_secdp_layout.rs Cargo.toml

crates/bench/benches/fig7_secdp_layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
