/root/repo/target/debug/deps/table4_area-17e773edc3036b64.d: crates/bench/benches/table4_area.rs

/root/repo/target/debug/deps/table4_area-17e773edc3036b64: crates/bench/benches/table4_area.rs

crates/bench/benches/table4_area.rs:
