/root/repo/target/debug/deps/end_to_end-a849759d1bb062fd.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a849759d1bb062fd: tests/end_to_end.rs

tests/end_to_end.rs:
