/root/repo/target/debug/deps/checkpoint_resume-61484f228e285002.d: crates/inject/tests/checkpoint_resume.rs

/root/repo/target/debug/deps/checkpoint_resume-61484f228e285002: crates/inject/tests/checkpoint_resume.rs

crates/inject/tests/checkpoint_resume.rs:
