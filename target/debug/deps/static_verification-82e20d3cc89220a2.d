/root/repo/target/debug/deps/static_verification-82e20d3cc89220a2.d: tests/static_verification.rs

/root/repo/target/debug/deps/static_verification-82e20d3cc89220a2: tests/static_verification.rs

tests/static_verification.rs:
