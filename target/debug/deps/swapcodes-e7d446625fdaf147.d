/root/repo/target/debug/deps/swapcodes-e7d446625fdaf147.d: src/lib.rs

/root/repo/target/debug/deps/libswapcodes-e7d446625fdaf147.rlib: src/lib.rs

/root/repo/target/debug/deps/libswapcodes-e7d446625fdaf147.rmeta: src/lib.rs

src/lib.rs:
