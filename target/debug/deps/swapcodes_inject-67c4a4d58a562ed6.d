/root/repo/target/debug/deps/swapcodes_inject-67c4a4d58a562ed6.d: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/debug/deps/swapcodes_inject-67c4a4d58a562ed6: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

crates/inject/src/lib.rs:
crates/inject/src/arch.rs:
crates/inject/src/detection.rs:
crates/inject/src/gate.rs:
crates/inject/src/stats.rs:
crates/inject/src/trace.rs:
