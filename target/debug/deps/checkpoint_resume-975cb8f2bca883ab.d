/root/repo/target/debug/deps/checkpoint_resume-975cb8f2bca883ab.d: crates/inject/tests/checkpoint_resume.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_resume-975cb8f2bca883ab.rmeta: crates/inject/tests/checkpoint_resume.rs Cargo.toml

crates/inject/tests/checkpoint_resume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
