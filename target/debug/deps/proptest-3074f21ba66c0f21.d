/root/repo/target/debug/deps/proptest-3074f21ba66c0f21.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3074f21ba66c0f21.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3074f21ba66c0f21.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
