/root/repo/target/debug/deps/swapcodes_isa-6ff569398292e113.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_isa-6ff569398292e113.rmeta: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/op.rs:
crates/isa/src/reg.rs:
crates/isa/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
