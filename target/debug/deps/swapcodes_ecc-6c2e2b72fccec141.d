/root/repo/target/debug/deps/swapcodes_ecc-6c2e2b72fccec141.d: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/layout.rs crates/ecc/src/parity.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_ecc-6c2e2b72fccec141.rmeta: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/layout.rs crates/ecc/src/parity.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs Cargo.toml

crates/ecc/src/lib.rs:
crates/ecc/src/analysis.rs:
crates/ecc/src/code.rs:
crates/ecc/src/hamming.rs:
crates/ecc/src/hsiao.rs:
crates/ecc/src/layout.rs:
crates/ecc/src/parity.rs:
crates/ecc/src/report.rs:
crates/ecc/src/residue.rs:
crates/ecc/src/swap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
