/root/repo/target/debug/deps/static_verification-68aca70210ef7609.d: tests/static_verification.rs

/root/repo/target/debug/deps/static_verification-68aca70210ef7609: tests/static_verification.rs

tests/static_verification.rs:
