/root/repo/target/debug/deps/swapcodes_gates-9d2ba17a72ec66f9.d: crates/gates/src/lib.rs crates/gates/src/area.rs crates/gates/src/builder.rs crates/gates/src/netlist.rs crates/gates/src/optimize.rs crates/gates/src/softfloat.rs crates/gates/src/units/mod.rs crates/gates/src/units/codec.rs crates/gates/src/units/fp.rs crates/gates/src/units/fxp.rs

/root/repo/target/debug/deps/libswapcodes_gates-9d2ba17a72ec66f9.rlib: crates/gates/src/lib.rs crates/gates/src/area.rs crates/gates/src/builder.rs crates/gates/src/netlist.rs crates/gates/src/optimize.rs crates/gates/src/softfloat.rs crates/gates/src/units/mod.rs crates/gates/src/units/codec.rs crates/gates/src/units/fp.rs crates/gates/src/units/fxp.rs

/root/repo/target/debug/deps/libswapcodes_gates-9d2ba17a72ec66f9.rmeta: crates/gates/src/lib.rs crates/gates/src/area.rs crates/gates/src/builder.rs crates/gates/src/netlist.rs crates/gates/src/optimize.rs crates/gates/src/softfloat.rs crates/gates/src/units/mod.rs crates/gates/src/units/codec.rs crates/gates/src/units/fp.rs crates/gates/src/units/fxp.rs

crates/gates/src/lib.rs:
crates/gates/src/area.rs:
crates/gates/src/builder.rs:
crates/gates/src/netlist.rs:
crates/gates/src/optimize.rs:
crates/gates/src/softfloat.rs:
crates/gates/src/units/mod.rs:
crates/gates/src/units/codec.rs:
crates/gates/src/units/fp.rs:
crates/gates/src/units/fxp.rs:
