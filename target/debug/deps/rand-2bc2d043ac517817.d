/root/repo/target/debug/deps/rand-2bc2d043ac517817.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2bc2d043ac517817.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
