/root/repo/target/debug/deps/fig15_interthread-5fab1eeb763329f9.d: crates/bench/benches/fig15_interthread.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_interthread-5fab1eeb763329f9.rmeta: crates/bench/benches/fig15_interthread.rs Cargo.toml

crates/bench/benches/fig15_interthread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
