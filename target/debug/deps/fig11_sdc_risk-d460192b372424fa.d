/root/repo/target/debug/deps/fig11_sdc_risk-d460192b372424fa.d: crates/bench/benches/fig11_sdc_risk.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_sdc_risk-d460192b372424fa.rmeta: crates/bench/benches/fig11_sdc_risk.rs Cargo.toml

crates/bench/benches/fig11_sdc_risk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
