/root/repo/target/debug/deps/fig14_power_energy-838fe7ea5f25fe81.d: crates/bench/benches/fig14_power_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_power_energy-838fe7ea5f25fe81.rmeta: crates/bench/benches/fig14_power_energy.rs Cargo.toml

crates/bench/benches/fig14_power_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
