/root/repo/target/debug/deps/swapcodes_bench-647927f6182e47f4.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_bench-647927f6182e47f4.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
