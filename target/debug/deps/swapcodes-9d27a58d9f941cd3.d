/root/repo/target/debug/deps/swapcodes-9d27a58d9f941cd3.d: src/lib.rs

/root/repo/target/debug/deps/swapcodes-9d27a58d9f941cd3: src/lib.rs

src/lib.rs:
