/root/repo/target/debug/deps/fueled_executor-8d170353b37ef03a.d: tests/fueled_executor.rs

/root/repo/target/debug/deps/fueled_executor-8d170353b37ef03a: tests/fueled_executor.rs

tests/fueled_executor.rs:
