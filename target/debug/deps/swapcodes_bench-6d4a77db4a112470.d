/root/repo/target/debug/deps/swapcodes_bench-6d4a77db4a112470.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libswapcodes_bench-6d4a77db4a112470.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libswapcodes_bench-6d4a77db4a112470.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
