/root/repo/target/debug/deps/swapcodes_core-267d2d19943c19fa.d: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

/root/repo/target/debug/deps/swapcodes_core-267d2d19943c19fa: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

crates/core/src/lib.rs:
crates/core/src/interthread.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/swapecc.rs:
crates/core/src/swdup.rs:
