/root/repo/target/debug/deps/swapcodes_inject-ccc5f571f4084f23.d: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/oracle.rs crates/inject/src/stats.rs crates/inject/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libswapcodes_inject-ccc5f571f4084f23.rmeta: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/oracle.rs crates/inject/src/stats.rs crates/inject/src/trace.rs Cargo.toml

crates/inject/src/lib.rs:
crates/inject/src/arch.rs:
crates/inject/src/detection.rs:
crates/inject/src/gate.rs:
crates/inject/src/harness.rs:
crates/inject/src/oracle.rs:
crates/inject/src/stats.rs:
crates/inject/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
