/root/repo/target/debug/deps/swapcodes_verify-ddcb1c82d2285155.d: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

/root/repo/target/debug/deps/swapcodes_verify-ddcb1c82d2285155: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

crates/verify/src/lib.rs:
crates/verify/src/cfg.rs:
crates/verify/src/dataflow.rs:
crates/verify/src/interthread.rs:
crates/verify/src/swapecc.rs:
crates/verify/src/swdup.rs:
