/root/repo/target/debug/deps/fig15_interthread-4914729c48f1f139.d: crates/bench/benches/fig15_interthread.rs

/root/repo/target/debug/deps/fig15_interthread-4914729c48f1f139: crates/bench/benches/fig15_interthread.rs

crates/bench/benches/fig15_interthread.rs:
