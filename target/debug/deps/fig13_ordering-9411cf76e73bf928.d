/root/repo/target/debug/deps/fig13_ordering-9411cf76e73bf928.d: tests/fig13_ordering.rs

/root/repo/target/debug/deps/fig13_ordering-9411cf76e73bf928: tests/fig13_ordering.rs

tests/fig13_ordering.rs:
