/root/repo/target/release/deps/swapcodes-1b6bcf4e31e2d9d7.d: src/lib.rs

/root/repo/target/release/deps/libswapcodes-1b6bcf4e31e2d9d7.rlib: src/lib.rs

/root/repo/target/release/deps/libswapcodes-1b6bcf4e31e2d9d7.rmeta: src/lib.rs

src/lib.rs:
