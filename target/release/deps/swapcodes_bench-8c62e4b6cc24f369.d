/root/repo/target/release/deps/swapcodes_bench-8c62e4b6cc24f369.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libswapcodes_bench-8c62e4b6cc24f369.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libswapcodes_bench-8c62e4b6cc24f369.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
