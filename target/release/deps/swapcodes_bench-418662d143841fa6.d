/root/repo/target/release/deps/swapcodes_bench-418662d143841fa6.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libswapcodes_bench-418662d143841fa6.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libswapcodes_bench-418662d143841fa6.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
