/root/repo/target/release/deps/fig12_performance-040df21a2de81900.d: crates/bench/benches/fig12_performance.rs

/root/repo/target/release/deps/fig12_performance-040df21a2de81900: crates/bench/benches/fig12_performance.rs

crates/bench/benches/fig12_performance.rs:
