/root/repo/target/release/deps/swapcodes-3628eaf2e0785ba7.d: src/lib.rs

/root/repo/target/release/deps/libswapcodes-3628eaf2e0785ba7.rlib: src/lib.rs

/root/repo/target/release/deps/libswapcodes-3628eaf2e0785ba7.rmeta: src/lib.rs

src/lib.rs:
