/root/repo/target/release/deps/rand-275460a8c9461ae6.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-275460a8c9461ae6.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-275460a8c9461ae6.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
