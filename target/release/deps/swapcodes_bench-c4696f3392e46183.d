/root/repo/target/release/deps/swapcodes_bench-c4696f3392e46183.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/swapcodes_bench-c4696f3392e46183: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/sweep.rs:
