/root/repo/target/release/deps/fig12_performance-b1e2e303be4bfeef.d: crates/bench/benches/fig12_performance.rs

/root/repo/target/release/deps/fig12_performance-b1e2e303be4bfeef: crates/bench/benches/fig12_performance.rs

crates/bench/benches/fig12_performance.rs:
