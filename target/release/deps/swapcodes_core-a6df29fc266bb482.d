/root/repo/target/release/deps/swapcodes_core-a6df29fc266bb482.d: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

/root/repo/target/release/deps/libswapcodes_core-a6df29fc266bb482.rlib: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

/root/repo/target/release/deps/libswapcodes_core-a6df29fc266bb482.rmeta: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

crates/core/src/lib.rs:
crates/core/src/interthread.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/swapecc.rs:
crates/core/src/swdup.rs:
