/root/repo/target/release/deps/micro-8154c5cc9dfccc66.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-8154c5cc9dfccc66: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
