/root/repo/target/release/deps/fig11_sdc_risk-9c7a93a637531ce1.d: crates/bench/benches/fig11_sdc_risk.rs

/root/repo/target/release/deps/fig11_sdc_risk-9c7a93a637531ce1: crates/bench/benches/fig11_sdc_risk.rs

crates/bench/benches/fig11_sdc_risk.rs:
