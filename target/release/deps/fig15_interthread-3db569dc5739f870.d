/root/repo/target/release/deps/fig15_interthread-3db569dc5739f870.d: crates/bench/benches/fig15_interthread.rs

/root/repo/target/release/deps/fig15_interthread-3db569dc5739f870: crates/bench/benches/fig15_interthread.rs

crates/bench/benches/fig15_interthread.rs:
