/root/repo/target/release/deps/swapcodes_inject-a521c980a28a34e2.d: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/oracle.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/release/deps/libswapcodes_inject-a521c980a28a34e2.rlib: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/oracle.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/release/deps/libswapcodes_inject-a521c980a28a34e2.rmeta: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/oracle.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

crates/inject/src/lib.rs:
crates/inject/src/arch.rs:
crates/inject/src/detection.rs:
crates/inject/src/gate.rs:
crates/inject/src/harness.rs:
crates/inject/src/oracle.rs:
crates/inject/src/stats.rs:
crates/inject/src/trace.rs:
