/root/repo/target/release/deps/rand-9097752ec2d2d8d2.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-9097752ec2d2d8d2.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-9097752ec2d2d8d2.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
