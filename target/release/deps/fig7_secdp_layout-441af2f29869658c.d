/root/repo/target/release/deps/fig7_secdp_layout-441af2f29869658c.d: crates/bench/benches/fig7_secdp_layout.rs

/root/repo/target/release/deps/fig7_secdp_layout-441af2f29869658c: crates/bench/benches/fig7_secdp_layout.rs

crates/bench/benches/fig7_secdp_layout.rs:
