/root/repo/target/release/deps/swapcodes_verify-63df790db278bee8.d: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

/root/repo/target/release/deps/libswapcodes_verify-63df790db278bee8.rlib: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

/root/repo/target/release/deps/libswapcodes_verify-63df790db278bee8.rmeta: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

crates/verify/src/lib.rs:
crates/verify/src/cfg.rs:
crates/verify/src/dataflow.rs:
crates/verify/src/interthread.rs:
crates/verify/src/swapecc.rs:
crates/verify/src/swdup.rs:
