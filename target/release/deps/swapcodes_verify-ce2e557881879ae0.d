/root/repo/target/release/deps/swapcodes_verify-ce2e557881879ae0.d: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

/root/repo/target/release/deps/libswapcodes_verify-ce2e557881879ae0.rlib: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

/root/repo/target/release/deps/libswapcodes_verify-ce2e557881879ae0.rmeta: crates/verify/src/lib.rs crates/verify/src/cfg.rs crates/verify/src/dataflow.rs crates/verify/src/interthread.rs crates/verify/src/swapecc.rs crates/verify/src/swdup.rs

crates/verify/src/lib.rs:
crates/verify/src/cfg.rs:
crates/verify/src/dataflow.rs:
crates/verify/src/interthread.rs:
crates/verify/src/swapecc.rs:
crates/verify/src/swdup.rs:
