/root/repo/target/release/deps/swapcodes_ecc-16c9b22648df18b1.d: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/layout.rs crates/ecc/src/parity.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs

/root/repo/target/release/deps/libswapcodes_ecc-16c9b22648df18b1.rlib: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/layout.rs crates/ecc/src/parity.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs

/root/repo/target/release/deps/libswapcodes_ecc-16c9b22648df18b1.rmeta: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/code.rs crates/ecc/src/hamming.rs crates/ecc/src/hsiao.rs crates/ecc/src/layout.rs crates/ecc/src/parity.rs crates/ecc/src/report.rs crates/ecc/src/residue.rs crates/ecc/src/swap.rs

crates/ecc/src/lib.rs:
crates/ecc/src/analysis.rs:
crates/ecc/src/code.rs:
crates/ecc/src/hamming.rs:
crates/ecc/src/hsiao.rs:
crates/ecc/src/layout.rs:
crates/ecc/src/parity.rs:
crates/ecc/src/report.rs:
crates/ecc/src/residue.rs:
crates/ecc/src/swap.rs:
