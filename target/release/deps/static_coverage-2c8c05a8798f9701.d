/root/repo/target/release/deps/static_coverage-2c8c05a8798f9701.d: crates/bench/benches/static_coverage.rs

/root/repo/target/release/deps/static_coverage-2c8c05a8798f9701: crates/bench/benches/static_coverage.rs

crates/bench/benches/static_coverage.rs:
