/root/repo/target/release/deps/fig16_future_predictors-f469661962df419b.d: crates/bench/benches/fig16_future_predictors.rs

/root/repo/target/release/deps/fig16_future_predictors-f469661962df419b: crates/bench/benches/fig16_future_predictors.rs

crates/bench/benches/fig16_future_predictors.rs:
