/root/repo/target/release/deps/swapcodes_core-e40dbaca5b389e2b.d: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

/root/repo/target/release/deps/libswapcodes_core-e40dbaca5b389e2b.rlib: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

/root/repo/target/release/deps/libswapcodes_core-e40dbaca5b389e2b.rmeta: crates/core/src/lib.rs crates/core/src/interthread.rs crates/core/src/report.rs crates/core/src/scheme.rs crates/core/src/swapecc.rs crates/core/src/swdup.rs

crates/core/src/lib.rs:
crates/core/src/interthread.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
crates/core/src/swapecc.rs:
crates/core/src/swdup.rs:
