/root/repo/target/release/deps/fig13_instruction_bloat-7b075b14ece33488.d: crates/bench/benches/fig13_instruction_bloat.rs

/root/repo/target/release/deps/fig13_instruction_bloat-7b075b14ece33488: crates/bench/benches/fig13_instruction_bloat.rs

crates/bench/benches/fig13_instruction_bloat.rs:
