/root/repo/target/release/deps/table4_area-50cd8a661216f966.d: crates/bench/benches/table4_area.rs

/root/repo/target/release/deps/table4_area-50cd8a661216f966: crates/bench/benches/table4_area.rs

crates/bench/benches/table4_area.rs:
