/root/repo/target/release/deps/swapcodes_inject-f76e1c721013e2e7.d: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/release/deps/libswapcodes_inject-f76e1c721013e2e7.rlib: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/release/deps/libswapcodes_inject-f76e1c721013e2e7.rmeta: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

crates/inject/src/lib.rs:
crates/inject/src/arch.rs:
crates/inject/src/detection.rs:
crates/inject/src/gate.rs:
crates/inject/src/harness.rs:
crates/inject/src/stats.rs:
crates/inject/src/trace.rs:
