/root/repo/target/release/deps/fig10_error_patterns-36036ddf24d92e72.d: crates/bench/benches/fig10_error_patterns.rs

/root/repo/target/release/deps/fig10_error_patterns-36036ddf24d92e72: crates/bench/benches/fig10_error_patterns.rs

crates/bench/benches/fig10_error_patterns.rs:
