/root/repo/target/release/deps/swapcodes_isa-df10903c26f380bf.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

/root/repo/target/release/deps/libswapcodes_isa-df10903c26f380bf.rlib: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

/root/repo/target/release/deps/libswapcodes_isa-df10903c26f380bf.rmeta: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/op.rs crates/isa/src/reg.rs crates/isa/src/validate.rs

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/op.rs:
crates/isa/src/reg.rs:
crates/isa/src/validate.rs:
