/root/repo/target/release/deps/ablation_adder-668e5eedc083803d.d: crates/bench/benches/ablation_adder.rs

/root/repo/target/release/deps/ablation_adder-668e5eedc083803d: crates/bench/benches/ablation_adder.rs

crates/bench/benches/ablation_adder.rs:
