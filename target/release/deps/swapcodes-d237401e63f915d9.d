/root/repo/target/release/deps/swapcodes-d237401e63f915d9.d: src/lib.rs

/root/repo/target/release/deps/libswapcodes-d237401e63f915d9.rlib: src/lib.rs

/root/repo/target/release/deps/libswapcodes-d237401e63f915d9.rmeta: src/lib.rs

src/lib.rs:
