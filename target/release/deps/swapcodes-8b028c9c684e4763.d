/root/repo/target/release/deps/swapcodes-8b028c9c684e4763.d: src/lib.rs

/root/repo/target/release/deps/libswapcodes-8b028c9c684e4763.rlib: src/lib.rs

/root/repo/target/release/deps/libswapcodes-8b028c9c684e4763.rmeta: src/lib.rs

src/lib.rs:
