/root/repo/target/release/deps/swapcodes_sim-da5855d03814662d.d: crates/sim/src/lib.rs crates/sim/src/exec.rs crates/sim/src/fault.rs crates/sim/src/memory.rs crates/sim/src/occupancy.rs crates/sim/src/power.rs crates/sim/src/profiler.rs crates/sim/src/regfile.rs crates/sim/src/timing.rs

/root/repo/target/release/deps/libswapcodes_sim-da5855d03814662d.rlib: crates/sim/src/lib.rs crates/sim/src/exec.rs crates/sim/src/fault.rs crates/sim/src/memory.rs crates/sim/src/occupancy.rs crates/sim/src/power.rs crates/sim/src/profiler.rs crates/sim/src/regfile.rs crates/sim/src/timing.rs

/root/repo/target/release/deps/libswapcodes_sim-da5855d03814662d.rmeta: crates/sim/src/lib.rs crates/sim/src/exec.rs crates/sim/src/fault.rs crates/sim/src/memory.rs crates/sim/src/occupancy.rs crates/sim/src/power.rs crates/sim/src/profiler.rs crates/sim/src/regfile.rs crates/sim/src/timing.rs

crates/sim/src/lib.rs:
crates/sim/src/exec.rs:
crates/sim/src/fault.rs:
crates/sim/src/memory.rs:
crates/sim/src/occupancy.rs:
crates/sim/src/power.rs:
crates/sim/src/profiler.rs:
crates/sim/src/regfile.rs:
crates/sim/src/timing.rs:
