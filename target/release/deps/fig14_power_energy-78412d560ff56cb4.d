/root/repo/target/release/deps/fig14_power_energy-78412d560ff56cb4.d: crates/bench/benches/fig14_power_energy.rs

/root/repo/target/release/deps/fig14_power_energy-78412d560ff56cb4: crates/bench/benches/fig14_power_energy.rs

crates/bench/benches/fig14_power_energy.rs:
