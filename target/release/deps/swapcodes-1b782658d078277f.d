/root/repo/target/release/deps/swapcodes-1b782658d078277f.d: src/lib.rs

/root/repo/target/release/deps/libswapcodes-1b782658d078277f.rlib: src/lib.rs

/root/repo/target/release/deps/libswapcodes-1b782658d078277f.rmeta: src/lib.rs

src/lib.rs:
