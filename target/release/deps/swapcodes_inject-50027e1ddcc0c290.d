/root/repo/target/release/deps/swapcodes_inject-50027e1ddcc0c290.d: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/oracle.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/release/deps/libswapcodes_inject-50027e1ddcc0c290.rlib: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/oracle.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

/root/repo/target/release/deps/libswapcodes_inject-50027e1ddcc0c290.rmeta: crates/inject/src/lib.rs crates/inject/src/arch.rs crates/inject/src/detection.rs crates/inject/src/gate.rs crates/inject/src/harness.rs crates/inject/src/oracle.rs crates/inject/src/stats.rs crates/inject/src/trace.rs

crates/inject/src/lib.rs:
crates/inject/src/arch.rs:
crates/inject/src/detection.rs:
crates/inject/src/gate.rs:
crates/inject/src/harness.rs:
crates/inject/src/oracle.rs:
crates/inject/src/stats.rs:
crates/inject/src/trace.rs:
