/root/repo/target/release/deps/proptest-23c6cd8fe893dcfb.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-23c6cd8fe893dcfb.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-23c6cd8fe893dcfb.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
