/root/repo/target/release/examples/perf_baseline-b3510bbe869b5407.d: crates/bench/examples/perf_baseline.rs

/root/repo/target/release/examples/perf_baseline-b3510bbe869b5407: crates/bench/examples/perf_baseline.rs

crates/bench/examples/perf_baseline.rs:
