/root/repo/target/release/examples/verify_kernel-3d2dbcee58cd3a6c.d: examples/verify_kernel.rs

/root/repo/target/release/examples/verify_kernel-3d2dbcee58cd3a6c: examples/verify_kernel.rs

examples/verify_kernel.rs:
