/root/repo/target/release/examples/quickstart-cf6c58309ba310c9.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-cf6c58309ba310c9: examples/quickstart.rs

examples/quickstart.rs:
