/root/repo/target/release/examples/quickstart-935cf318ad39dccc.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-935cf318ad39dccc: examples/quickstart.rs

examples/quickstart.rs:
