/root/repo/target/release/examples/pipeline_fault_injection-619e346794c63790.d: examples/pipeline_fault_injection.rs

/root/repo/target/release/examples/pipeline_fault_injection-619e346794c63790: examples/pipeline_fault_injection.rs

examples/pipeline_fault_injection.rs:
