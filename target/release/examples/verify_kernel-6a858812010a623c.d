/root/repo/target/release/examples/verify_kernel-6a858812010a623c.d: examples/verify_kernel.rs

/root/repo/target/release/examples/verify_kernel-6a858812010a623c: examples/verify_kernel.rs

examples/verify_kernel.rs:
