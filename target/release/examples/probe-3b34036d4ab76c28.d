/root/repo/target/release/examples/probe-3b34036d4ab76c28.d: crates/bench/examples/probe.rs

/root/repo/target/release/examples/probe-3b34036d4ab76c28: crates/bench/examples/probe.rs

crates/bench/examples/probe.rs:
