(function() {
    const implementors = Object.fromEntries([["swapcodes_isa",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"struct\" href=\"swapcodes_isa/struct.Reg.html\" title=\"struct swapcodes_isa::Reg\">Reg</a>&gt; for <a class=\"enum\" href=\"swapcodes_isa/enum.Src.html\" title=\"enum swapcodes_isa::Src\">Src</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[376]}