(function() {
    const implementors = Object.fromEntries([["swapcodes_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"swapcodes_core/enum.TransformError.html\" title=\"enum swapcodes_core::TransformError\">TransformError</a>",0]]],["swapcodes_inject",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"swapcodes_inject/arch/enum.PrepError.html\" title=\"enum swapcodes_inject::arch::PrepError\">PrepError</a>",0]]],["swapcodes_isa",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"swapcodes_isa/validate/enum.ValidationError.html\" title=\"enum swapcodes_isa::validate::ValidationError\">ValidationError</a>",0]]],["swapcodes_sim",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"swapcodes_sim/exec/enum.ExecError.html\" title=\"enum swapcodes_sim::exec::ExecError\">ExecError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[301,304,321,295]}