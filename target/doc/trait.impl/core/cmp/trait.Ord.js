(function() {
    const implementors = Object.fromEntries([["swapcodes_isa",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"swapcodes_isa/struct.Pred.html\" title=\"struct swapcodes_isa::Pred\">Pred</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"swapcodes_isa/struct.Reg.html\" title=\"struct swapcodes_isa::Reg\">Reg</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[506]}