(function() {
    const implementors = Object.fromEntries([["proptest",[["impl RngCore for <a class=\"struct\" href=\"proptest/struct.TestRng.html\" title=\"struct proptest::TestRng\">TestRng</a>",0]]],["rand",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[142,12]}