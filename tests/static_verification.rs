//! System-level static verification: the verifier, the validator lints and
//! the transforms agree with each other across the whole workload suite,
//! through the facade crate the way a downstream user sees them.

use swapcodes::core::{apply, PredictorSet, Scheme};
use swapcodes::isa::validate::{lint, validate, Lint};
use swapcodes::verify::verify;

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::SwDup,
        Scheme::SwapEcc,
        Scheme::SwapPredict(PredictorSet::MAD),
        Scheme::InterThread { checked: true },
    ]
}

#[test]
fn transformed_suite_is_statically_verified_and_valid() {
    for w in swapcodes::workloads::all() {
        for scheme in all_schemes() {
            let Ok(t) = apply(scheme, &w.kernel, w.launch) else {
                continue;
            };
            // The transform output is structurally valid...
            assert_eq!(validate(&t.kernel), Ok(()), "{} x {scheme:?}", w.name);
            // ...and provably protected.
            let report = verify(scheme, &t.kernel);
            assert!(report.is_clean(), "{} x {scheme:?}: {report}", w.name);
            assert!(
                (report.coverage.fraction() - 1.0).abs() < f64::EPSILON,
                "{} x {scheme:?} not fully covered",
                w.name
            );
        }
    }
}

#[test]
fn lints_tolerate_transform_idioms() {
    // Transform outputs may contain a defensive unreachable EXIT in front
    // of the appended trap block — an UnreachableCode *lint*, never an
    // error. Intra-thread schemes emit no shuffles, so their outputs must
    // never trip the divergent-shuffle lint (check branches to the trap
    // block are aborts, not divergence). Inter-thread duplication MAY trip
    // it: its check shuffles inside data-dependent branches are exactly
    // where the scheme's pair-uniformity assumption (§V) is load-bearing,
    // and the lint is how that spot gets surfaced to a kernel author.
    for w in swapcodes::workloads::all() {
        for scheme in all_schemes() {
            let Ok(t) = apply(scheme, &w.kernel, w.launch) else {
                continue;
            };
            let interthread = matches!(scheme, Scheme::InterThread { .. });
            for l in lint(&t.kernel) {
                let tolerated = matches!(l, Lint::UnreachableCode { .. })
                    || (interthread && matches!(l, Lint::ShflInDivergentFlow { .. }));
                assert!(tolerated, "{} x {scheme:?}: unexpected lint {l}", w.name);
            }
        }
    }
}

#[test]
fn raw_workloads_lint_clean() {
    // The curated suite itself has no divergent shuffles and no dead code.
    for w in swapcodes::workloads::all() {
        assert_eq!(lint(&w.kernel), Vec::new(), "{}", w.name);
    }
}

#[test]
fn machine_readable_report_round_trips_key_facts() {
    let w = swapcodes::workloads::by_name("matmul").expect("matmul");
    let t = apply(Scheme::SwapEcc, &w.kernel, w.launch).expect("applies");
    let report = verify(Scheme::SwapEcc, &t.kernel);
    let json = report.to_json();
    assert!(json.contains("\"scheme\":\"Swap-ECC\""));
    assert!(json.contains("\"clean\":true"));
    assert!(json.contains(&format!("\"points\":{}", report.coverage.points)));
    assert!(json.contains("\"fraction\":1"));
}
