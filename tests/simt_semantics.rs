//! SIMT semantics tests for the functional executor: divergence and
//! reconvergence, nested branches, shuffles, barriers across warps, atomics
//! and predication — the execution-model ground the compiler passes and
//! timing model stand on.

use swapcodes_isa::{
    CmpOp, CmpTy, Instr, KernelBuilder, MemSpace, MemWidth, Op, Pred, Reg, ShflMode, SpecialReg,
    Src,
};
use swapcodes_sim::exec::{Detection, ExecConfig, Executor};
use swapcodes_sim::{GlobalMemory, Launch};

fn run(k: swapcodes_isa::Kernel, launch: Launch, mem_bytes: usize) -> GlobalMemory {
    let mut mem = GlobalMemory::new(mem_bytes);
    let out = Executor {
        config: ExecConfig::default(),
    }
    .run(&k, launch, &mut mem)
    .expect("simt kernels execute");
    assert_eq!(out.detection, Detection::None);
    mem
}

fn store_tid_indexed(k: &mut KernelBuilder, value: Reg, tid: Reg, scratch: Reg) {
    k.push(Op::Shl {
        d: scratch,
        a: tid,
        b: Src::Imm(2),
    });
    k.push(Op::St {
        space: MemSpace::Global,
        addr: scratch,
        offset: 0,
        v: value,
        width: MemWidth::W32,
    });
}

#[test]
fn divergent_if_else_reconverges() {
    // out[tid] = tid < 16 ? tid * 2 : tid + 100; then +1 for all (post-join).
    let mut k = KernelBuilder::new("ifelse");
    k.push(Op::S2R {
        d: Reg(0),
        sr: SpecialReg::TidX,
    });
    k.push(Op::SetP {
        p: Pred(1),
        cmp: CmpOp::Lt,
        ty: CmpTy::I32,
        a: Reg(0),
        b: Src::Imm(16),
    });
    let else_l = k.label();
    let join = k.label();
    k.branch_if(else_l, Pred(1), false);
    k.push(Op::Shl {
        d: Reg(1),
        a: Reg(0),
        b: Src::Imm(1),
    });
    k.branch_to(join);
    k.bind(else_l);
    k.push(Op::IAdd {
        d: Reg(1),
        a: Reg(0),
        b: Src::Imm(100),
    });
    k.bind(join);
    k.push(Op::IAdd {
        d: Reg(1),
        a: Reg(1),
        b: Src::Imm(1),
    });
    store_tid_indexed(&mut k, Reg(1), Reg(0), Reg(2));
    k.push(Op::Exit);
    let mem = run(k.finish(), Launch::grid(1, 32), 256);
    for tid in 0..32u32 {
        let want = if tid < 16 { tid * 2 + 1 } else { tid + 101 };
        assert_eq!(mem.read(tid * 4), want, "tid {tid}");
    }
}

#[test]
fn data_dependent_loop_trip_counts() {
    // out[tid] = sum 1..=tid (per-lane loop trip counts differ).
    let mut k = KernelBuilder::new("tri");
    k.push(Op::S2R {
        d: Reg(0),
        sr: SpecialReg::TidX,
    });
    k.push(Op::Mov {
        d: Reg(1),
        a: Src::Imm(0),
    }); // acc
    k.push(Op::Mov {
        d: Reg(2),
        a: Src::Imm(0),
    }); // i
    let top = k.label();
    let done = k.label();
    k.bind(top);
    k.push(Op::SetP {
        p: Pred(1),
        cmp: CmpOp::Ge,
        ty: CmpTy::I32,
        a: Reg(2),
        b: Src::Reg(Reg(0)),
    });
    k.branch_if(done, Pred(1), true);
    k.push(Op::IAdd {
        d: Reg(2),
        a: Reg(2),
        b: Src::Imm(1),
    });
    k.push(Op::IAdd {
        d: Reg(1),
        a: Reg(1),
        b: Src::Reg(Reg(2)),
    });
    k.branch_to(top);
    k.bind(done);
    store_tid_indexed(&mut k, Reg(1), Reg(0), Reg(3));
    k.push(Op::Exit);
    let mem = run(k.finish(), Launch::grid(1, 32), 256);
    for tid in 0..32u32 {
        assert_eq!(mem.read(tid * 4), tid * (tid + 1) / 2, "tid {tid}");
    }
}

#[test]
fn butterfly_shuffle_reduction_sums_the_warp() {
    let mut k = KernelBuilder::new("reduce");
    k.push(Op::S2R {
        d: Reg(0),
        sr: SpecialReg::TidX,
    });
    k.push(Op::Mov {
        d: Reg(1),
        a: Src::Reg(Reg(0)),
    });
    for sh in [16u32, 8, 4, 2, 1] {
        k.push(Op::Shfl {
            d: Reg(2),
            a: Reg(1),
            mode: ShflMode::Bfly(sh),
        });
        k.push(Op::IAdd {
            d: Reg(1),
            a: Reg(1),
            b: Src::Reg(Reg(2)),
        });
    }
    store_tid_indexed(&mut k, Reg(1), Reg(0), Reg(3));
    k.push(Op::Exit);
    let mem = run(k.finish(), Launch::grid(1, 32), 256);
    for tid in 0..32u32 {
        assert_eq!(mem.read(tid * 4), (0..32).sum::<u32>(), "tid {tid}");
    }
}

#[test]
fn idx_shuffle_broadcasts_lane_zero() {
    let mut k = KernelBuilder::new("bcast");
    k.push(Op::S2R {
        d: Reg(0),
        sr: SpecialReg::TidX,
    });
    k.push(Op::IAdd {
        d: Reg(1),
        a: Reg(0),
        b: Src::Imm(7),
    });
    k.push(Op::Shfl {
        d: Reg(2),
        a: Reg(1),
        mode: ShflMode::Idx(Src::Imm(0)),
    });
    store_tid_indexed(&mut k, Reg(2), Reg(0), Reg(3));
    k.push(Op::Exit);
    let mem = run(k.finish(), Launch::grid(1, 32), 256);
    for tid in 0..32u32 {
        assert_eq!(mem.read(tid * 4), 7, "tid {tid}");
    }
}

#[test]
fn barrier_orders_shared_memory_across_warps() {
    // Warp 0 lanes write shared[tid]; after the barrier every thread reads
    // shared[(tid + 1) % 64] — only correct if the barrier is real.
    let mut k = KernelBuilder::new("bar");
    k.push(Op::S2R {
        d: Reg(0),
        sr: SpecialReg::TidX,
    });
    k.push(Op::Shl {
        d: Reg(1),
        a: Reg(0),
        b: Src::Imm(2),
    });
    k.push(Op::IMul {
        d: Reg(2),
        a: Reg(0),
        b: Src::Imm(3),
    });
    k.push(Op::St {
        space: MemSpace::Shared,
        addr: Reg(1),
        offset: 0,
        v: Reg(2),
        width: MemWidth::W32,
    });
    k.push(Op::Bar);
    k.push(Op::IAdd {
        d: Reg(3),
        a: Reg(0),
        b: Src::Imm(1),
    });
    k.push(Op::And {
        d: Reg(3),
        a: Reg(3),
        b: Src::Imm(63),
    });
    k.push(Op::Shl {
        d: Reg(3),
        a: Reg(3),
        b: Src::Imm(2),
    });
    k.push(Op::Ld {
        d: Reg(4),
        space: MemSpace::Shared,
        addr: Reg(3),
        offset: 0,
        width: MemWidth::W32,
    });
    store_tid_indexed(&mut k, Reg(4), Reg(0), Reg(5));
    k.push(Op::Exit);
    let mem = run(
        k.finish(),
        Launch {
            ctas: 1,
            threads_per_cta: 64,
            shared_words: 64,
        },
        512,
    );
    for tid in 0..64u32 {
        assert_eq!(mem.read(tid * 4), ((tid + 1) % 64) * 3, "tid {tid}");
    }
}

#[test]
fn atomics_accumulate_across_ctas() {
    let mut k = KernelBuilder::new("atom");
    k.push(Op::Mov {
        d: Reg(0),
        a: Src::Imm(0),
    });
    k.push(Op::Mov {
        d: Reg(1),
        a: Src::Imm(1),
    });
    k.push(Op::AtomAdd {
        addr: Reg(0),
        offset: 0,
        v: Reg(1),
    });
    k.push(Op::Exit);
    let mem = run(k.finish(), Launch::grid(4, 96), 64);
    assert_eq!(mem.read(0), 4 * 96);
}

#[test]
fn guarded_instructions_respect_per_lane_predicates() {
    // @P1 adds 1000 only on even lanes.
    let mut k = KernelBuilder::new("guard");
    k.push(Op::S2R {
        d: Reg(0),
        sr: SpecialReg::TidX,
    });
    k.push(Op::And {
        d: Reg(1),
        a: Reg(0),
        b: Src::Imm(1),
    });
    k.push(Op::SetP {
        p: Pred(1),
        cmp: CmpOp::Eq,
        ty: CmpTy::I32,
        a: Reg(1),
        b: Src::Imm(0),
    });
    k.push(Op::Mov {
        d: Reg(2),
        a: Src::Reg(Reg(0)),
    });
    k.push_instr(Instr::guarded(
        Op::IAdd {
            d: Reg(2),
            a: Reg(2),
            b: Src::Imm(1000),
        },
        Pred(1),
        true,
    ));
    store_tid_indexed(&mut k, Reg(2), Reg(0), Reg(3));
    k.push(Op::Exit);
    let mem = run(k.finish(), Launch::grid(1, 32), 256);
    for tid in 0..32u32 {
        let want = if tid % 2 == 0 { tid + 1000 } else { tid };
        assert_eq!(mem.read(tid * 4), want, "tid {tid}");
    }
}

#[test]
fn partial_warps_mask_inactive_lanes() {
    // 40 threads: the second warp has only 8 active lanes.
    let mut k = KernelBuilder::new("partial");
    k.push(Op::S2R {
        d: Reg(0),
        sr: SpecialReg::TidX,
    });
    k.push(Op::Mov {
        d: Reg(1),
        a: Src::Imm(1),
    });
    k.push(Op::Mov {
        d: Reg(2),
        a: Src::Imm(0),
    });
    k.push(Op::AtomAdd {
        addr: Reg(2),
        offset: 0,
        v: Reg(1),
    });
    k.push(Op::Exit);
    let mem = run(k.finish(), Launch::grid(1, 40), 64);
    assert_eq!(mem.read(0), 40);
}
