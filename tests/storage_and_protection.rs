//! Integration tests for the storage-error side of SwapCodes: the register
//! file must keep correcting SRAM upsets under every Swap organization, and
//! the reporting must distinguish them from pipeline errors.

use swapcodes_ecc::analysis::{pipeline_coverage, storage_coverage};
use swapcodes_ecc::CodeKind;
use swapcodes_sim::regfile::{Protection, RegFileEvent, WarpRegFile};

#[test]
fn regfile_corrects_storage_singles_everywhere() {
    for protection in [Protection::SecDedDp, Protection::SecDp] {
        let mut rf = WarpRegFile::new(16, protection);
        for lane in [0u32, 7, 31] {
            for reg in [0u8, 5, 15] {
                let value = 0xA5A5_0000 | u32::from(reg) | (lane << 8);
                rf.write_full(lane, reg, value);
                rf.write_ecc_only(lane, reg, value); // clean shadow
                for bit in (0..38).step_by(5) {
                    rf.flip_storage_bit(lane, reg, bit);
                    let (v, e) = rf.read(lane, reg);
                    assert_eq!(v, value, "{protection:?} lane {lane} R{reg} bit {bit}");
                    assert!(
                        !e.is_due(),
                        "{protection:?} flagged a correctable storage error"
                    );
                    // Restore for the next flip.
                    rf.write_full(lane, reg, value);
                    rf.write_ecc_only(lane, reg, value);
                }
            }
        }
    }
}

#[test]
fn regfile_distinguishes_storage_from_pipeline() {
    let mut rf = WarpRegFile::new(4, Protection::SecDedDp);
    // Storage error: corrected, not a DUE.
    rf.write_full(0, 0, 42);
    rf.flip_storage_bit(0, 0, 3);
    let (_, e) = rf.read(0, 0);
    assert_eq!(e, RegFileEvent::Corrected);
    // Pipeline error on the shadow: DUE with pipeline attribution.
    rf.write_full(0, 1, 42);
    rf.write_ecc_only(0, 1, 43);
    let (_, e) = rf.read(0, 1);
    assert_eq!(
        e,
        RegFileEvent::Due {
            pipeline_suspected: true
        }
    );
}

#[test]
fn detect_only_codes_flag_but_never_touch_data() {
    for a in [2u8, 3, 7] {
        let mut rf = WarpRegFile::new(4, Protection::DetectOnly(CodeKind::Residue { a }));
        rf.write_full(1, 2, 1000);
        rf.flip_storage_bit(1, 2, 0);
        let (v, e) = rf.read(1, 2);
        assert_eq!(v, 1001, "detection-only never modifies data");
        assert!(e.is_due());
    }
}

/// Cross-validate the analysis module against the coverage guarantees the
/// register file relies on, for every Fig. 11 code.
#[test]
fn per_code_coverage_contracts() {
    let data = 0x5A3C_E714;
    for kind in CodeKind::figure11_sweep() {
        let code = kind.build();
        // Single-bit pipeline errors are never silent under any code in the
        // sweep (parity included: a 1-bit delta flips parity).
        let p1 = pipeline_coverage(&code, data, 1);
        assert_eq!(p1.silent + p1.miscorrected, 0, "{kind}");
        // Storage singles are never SILENT either (detected or corrected).
        let s1 = storage_coverage(&code, data, 1);
        assert_eq!(s1.silent + s1.miscorrected, 0, "{kind}");
    }
}

#[test]
fn secded_dp_reporting_is_storage_safe_up_to_doubles() {
    // Through the analysis lens: SEC-DED never miscorrects storage doubles.
    let code = CodeKind::SecDed.build();
    let r = storage_coverage(&code, 0xDEAD_BEEF, 2);
    assert_eq!(r.miscorrected, 0);
    assert_eq!(r.silent, 0);
}
