//! Robustness property: the fueled executor is total. Whatever random fault
//! is injected into whatever workload under whatever scheme, `Executor::run`
//! must return — never panic, never spin — and a blown budget must surface
//! as `ExecError::Hang`, not as silence.

use proptest::prelude::*;
use swapcodes_core::{apply, PredictorSet, Scheme};
use swapcodes_isa::{KernelBuilder, Op, Reg, SpecialReg, Src};
use swapcodes_sim::exec::{ExecConfig, ExecError, Executor};
use swapcodes_sim::{FaultClass, FaultSpec, FaultTarget, Launch};
use swapcodes_workloads::all;

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Baseline,
        Scheme::SwDup,
        Scheme::SwapEcc,
        Scheme::SwapPredict(PredictorSet::MAD),
        Scheme::InterThread { checked: true },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random strikes never hang or panic any workload under any scheme:
    /// the run either completes (with whatever detection the scheme
    /// affords) or reports a structured hang/trap once the budget is gone.
    #[test]
    fn random_faults_never_escape_the_fuel_budget(
        workload_idx in 0usize..64,
        scheme_idx in 0usize..5,
        eligible_index in 0u64..2_000,
        lane in 0u32..32,
        bit in 0u32..32,
        shadow in any::<bool>(),
        fuel in 50u64..5_000,
    ) {
        let workloads = all();
        let w = &workloads[workload_idx % workloads.len()];
        let scheme = schemes()[scheme_idx];
        let Ok(t) = apply(scheme, &w.kernel, w.launch) else {
            // Inter-thread duplication legitimately rejects wide CTAs.
            return Ok(());
        };
        let fault = FaultSpec {
            eligible_index,
            lane,
            xor_mask: 1u64 << bit,
            target: if shadow { FaultTarget::Shadow } else { FaultTarget::Original },
            class: FaultClass::Transient,
        };
        let exec = Executor {
            config: ExecConfig {
                protection: t.protection,
                fault: Some(fault),
                cta_limit: Some(1),
                fuel: Some(fuel),
                ..ExecConfig::default()
            },
        };
        let mut mem = w.build_memory();
        match exec.run(&t.kernel, t.launch, &mut mem) {
            Ok(_) => {}
            Err(ExecError::Hang { steps }) => prop_assert!(steps > fuel),
            Err(ExecError::Trap { .. }) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "{}/{:?} surfaced a host-side error under injection: {other}",
                    w.name, scheme
                )));
            }
        }
    }
}

/// A literal infinite loop exhausts its budget and reports `Hang` instead
/// of spinning the host.
#[test]
fn infinite_loop_exhausts_fuel_as_hang() {
    let mut k = KernelBuilder::new("spin");
    k.push(Op::S2R {
        d: Reg(0),
        sr: SpecialReg::TidX,
    });
    let top = k.label();
    k.bind(top);
    k.push(Op::IAdd {
        d: Reg(1),
        a: Reg(1),
        b: Src::Imm(1),
    });
    k.branch_to(top);
    k.push(Op::Exit);
    let kernel = k.finish();

    let exec = Executor {
        config: ExecConfig {
            fuel: Some(4_096),
            ..ExecConfig::default()
        },
    };
    let mut mem = swapcodes_sim::GlobalMemory::new(64);
    match exec.run(&kernel, Launch::grid(1, 32), &mut mem) {
        Err(ExecError::Hang { steps }) => assert!(steps > 4_096),
        other => panic!("expected ExecError::Hang, got {other:?}"),
    }
}

/// Fuel is a hard ceiling even on a perfectly healthy run: a budget smaller
/// than the golden instruction count turns the run into a structured hang.
#[test]
fn undersized_fuel_reports_hang_on_clean_runs() {
    let w = all()
        .into_iter()
        .find(|w| w.name == "matmul")
        .expect("matmul");
    let exec = Executor {
        config: ExecConfig {
            cta_limit: Some(1),
            fuel: Some(8),
            ..ExecConfig::default()
        },
    };
    let mut mem = w.build_memory();
    match exec.run(&w.kernel, w.launch, &mut mem) {
        Err(ExecError::Hang { steps }) => assert!(steps > 8),
        other => panic!("expected ExecError::Hang, got {other:?}"),
    }
}
