//! Cross-crate integration tests: every protection scheme must preserve
//! program semantics, and the detection machinery must catch injected
//! pipeline errors end to end.

use swapcodes_core::{apply, PredictorSet, Scheme};
use swapcodes_sim::exec::{Detection, ExecConfig};
use swapcodes_sim::{Executor, FaultSpec, GlobalMemory};
use swapcodes_workloads::{all, by_name, Workload};

fn run_scheme(w: &Workload, scheme: Scheme, ctas: u32) -> (GlobalMemory, Detection) {
    let t = apply(scheme, &w.kernel, w.launch).expect("transform");
    let mut mem = w.build_memory();
    let exec = Executor {
        config: ExecConfig {
            protection: t.protection,
            cta_limit: Some(ctas),
            ..ExecConfig::default()
        },
    };
    let out = exec
        .run(&t.kernel, t.launch, &mut mem)
        .expect("fault-free workloads execute");
    assert!(!out.truncated, "{}/{:?} truncated", w.name, scheme);
    (mem, out.detection)
}

#[test]
fn every_scheme_preserves_every_workload_output() {
    for w in all() {
        let (base, d) = run_scheme(&w, Scheme::Baseline, 2);
        assert_eq!(d, Detection::None, "{} baseline", w.name);
        let mut schemes = vec![
            Scheme::SwDup,
            Scheme::SwapEcc,
            Scheme::SwapPredict(PredictorSet::ADD_SUB),
            Scheme::SwapPredict(PredictorSet::MAD),
            Scheme::SwapPredict(PredictorSet::FP_MAD),
        ];
        if apply(Scheme::InterThread { checked: true }, &w.kernel, w.launch).is_ok() {
            schemes.push(Scheme::InterThread { checked: true });
            schemes.push(Scheme::InterThread { checked: false });
        }
        for scheme in schemes {
            let (mem, det) = run_scheme(&w, scheme, 2);
            assert_eq!(
                det,
                Detection::None,
                "{} {:?} flagged a fault-free run",
                w.name,
                scheme
            );
            assert_eq!(
                w.output_words(&base),
                w.output_words(&mem),
                "{} output diverged under {:?}",
                w.name,
                scheme
            );
        }
    }
}

#[test]
fn interthread_rejects_matmul_and_snap() {
    let mm = by_name("matmul").expect("matmul");
    assert!(apply(Scheme::InterThread { checked: true }, &mm.kernel, mm.launch).is_err());
    let snap = by_name("snap").expect("snap");
    assert!(apply(
        Scheme::InterThread { checked: true },
        &snap.kernel,
        snap.launch
    )
    .is_err());
}

fn inject(
    w: &Workload,
    scheme: Scheme,
    fault: FaultSpec,
) -> (Detection, bool /* output corrupted */) {
    let t = apply(scheme, &w.kernel, w.launch).expect("transform");
    let golden = {
        let mut mem = w.build_memory();
        let exec = Executor {
            config: ExecConfig {
                protection: t.protection,
                cta_limit: Some(1),
                ..ExecConfig::default()
            },
        };
        exec.run(&t.kernel, t.launch, &mut mem)
            .expect("golden run executes");
        w.output_words(&mem)
    };
    let mut mem = w.build_memory();
    let exec = Executor {
        config: ExecConfig {
            protection: t.protection,
            fault: Some(fault),
            cta_limit: Some(1),
            ..ExecConfig::default()
        },
    };
    let out = exec
        .run(&t.kernel, t.launch, &mut mem)
        .expect("faulted runs trap rather than error");
    assert!(out.faults_applied > 0 || out.detection != Detection::None);
    (out.detection, w.output_words(&mem) != golden)
}

#[test]
fn baseline_faults_corrupt_silently() {
    // Not every strike corrupts (some are architecturally masked); at least
    // one of these must reach the output silently.
    let w = by_name("matmul").expect("matmul");
    let mut corrupted_any = false;
    for idx in [100u64, 300, 500, 700, 900] {
        let (det, corrupted) = inject(&w, Scheme::Baseline, FaultSpec::single_bit(idx, 3, 4));
        assert_eq!(det, Detection::None, "baseline has no detection");
        corrupted_any |= corrupted;
    }
    assert!(corrupted_any, "no strike reached the output");
}

#[test]
fn swdup_traps_on_original_strike() {
    // Some strikes are architecturally masked (e.g. a flipped bit that a
    // following AND discards); any unmasked strike must trap, and at least
    // one of these must be unmasked.
    let w = by_name("matmul").expect("matmul");
    let mut trapped = false;
    for (idx, bit) in [(500u64, 30u32), (500, 4), (700, 12), (900, 3)] {
        let (det, corrupted) = inject(&w, Scheme::SwDup, FaultSpec::single_bit(idx, 3, bit));
        match det {
            Detection::Trap { .. } => trapped = true,
            Detection::None => assert!(!corrupted, "SDC escaped the checks"),
            other => panic!("unexpected detection {other:?}"),
        }
    }
    assert!(trapped, "no strike reached a software check");
}

#[test]
fn swdup_traps_on_shadow_strike() {
    let w = by_name("matmul").expect("matmul");
    let (det, corrupted) = inject(&w, Scheme::SwDup, FaultSpec::single_bit_shadow(500, 3, 30));
    assert!(matches!(det, Detection::Trap { .. }), "got {det:?}");
    let _ = corrupted;
}

#[test]
fn swapecc_raises_due_on_original_strike() {
    let w = by_name("matmul").expect("matmul");
    let (det, _) = inject(&w, Scheme::SwapEcc, FaultSpec::single_bit(500, 3, 30));
    assert!(
        matches!(
            det,
            Detection::Due {
                pipeline_suspected: true,
                ..
            }
        ),
        "expected a pipeline DUE, got {det:?}"
    );
}

#[test]
fn swapecc_raises_due_on_shadow_strike() {
    // A shadow strike leaves the data correct but poisons the check bits:
    // the next read of the register must raise a DUE (error containment —
    // the corrupted codeword never reaches memory).
    let w = by_name("matmul").expect("matmul");
    let (det, _) = inject(
        &w,
        Scheme::SwapEcc,
        FaultSpec::single_bit_shadow(500, 3, 30),
    );
    assert!(matches!(det, Detection::Due { .. }), "got {det:?}");
}

#[test]
fn swap_predict_detects_faults_in_predicted_instructions() {
    let w = by_name("matmul").expect("matmul");
    // Under Pre-MAD the FFMA stays duplicated but integer adds are
    // predicted; strike an original (predicted instructions count as
    // originals).
    let (det, _) = inject(
        &w,
        Scheme::SwapPredict(PredictorSet::FP_MAD),
        FaultSpec::single_bit(500, 3, 30),
    );
    assert!(
        matches!(det, Detection::Due { .. }),
        "prediction must still detect datapath faults, got {det:?}"
    );
}

#[test]
fn interthread_traps_on_corrupted_store_operand() {
    // Corrupt lane 0's thread-index computation in the prologue: its pair
    // partner (lane 1) disagrees, so the shuffle check before the atomic
    // must trap.
    let w = by_name("bfs").expect("bfs");
    let (det, _) = inject(
        &w,
        Scheme::InterThread { checked: true },
        FaultSpec::single_bit(2, 0, 3),
    );
    assert!(
        matches!(det, Detection::Trap { .. }),
        "expected a shuffle-check trap, got {det:?}"
    );
}

#[test]
fn every_workload_and_transform_validates() {
    use swapcodes_isa::validate::validate;
    for w in all() {
        validate(&w.kernel).unwrap_or_else(|e| panic!("{} invalid: {e:?}", w.name));
        for scheme in [
            Scheme::SwDup,
            Scheme::SwapEcc,
            Scheme::SwapPredict(PredictorSet::FP_MAD),
        ] {
            let t = apply(scheme, &w.kernel, w.launch).expect("applies");
            validate(&t.kernel)
                .unwrap_or_else(|e| panic!("{} under {scheme:?} invalid: {e:?}", w.name));
        }
        if let Ok(t) = apply(Scheme::InterThread { checked: true }, &w.kernel, w.launch) {
            validate(&t.kernel)
                .unwrap_or_else(|e| panic!("{} inter-thread invalid: {e:?}", w.name));
        }
    }
}
