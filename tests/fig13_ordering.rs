//! The paper sorts its benchmarks by checking-code bloat (Fig. 13's x-axis):
//! lavaMD needs the least checking, srad_v2 the most. The synthetic suite
//! must preserve those endpoints, since several of the paper's arguments
//! (e.g. which programs benefit most from Swap-ECC) hinge on them.

use swapcodes_core::{apply, Scheme};
use swapcodes_sim::exec::{ExecConfig, Executor};
use swapcodes_workloads::rodinia;

fn checking_fraction(w: &swapcodes_workloads::Workload) -> f64 {
    let t = apply(Scheme::SwDup, &w.kernel, w.launch).expect("sw-dup applies");
    let mut mem = w.build_memory();
    let exec = Executor {
        config: ExecConfig {
            cta_limit: Some(2),
            ..ExecConfig::default()
        },
    };
    let p = exec
        .run(&t.kernel, t.launch, &mut mem)
        .expect("sw-dup workloads execute")
        .profile;
    p.checking as f64 / p.original_program() as f64
}

#[test]
fn checking_bloat_ordering_matches_the_paper() {
    let mut v: Vec<(&'static str, f64)> = rodinia()
        .iter()
        .map(|w| (w.name, checking_fraction(w)))
        .collect();
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"));
    let names: Vec<&str> = v.iter().map(|(n, _)| *n).collect();
    // Paper's endpoints: lavaMD needs the least checking code, srad_v2 the
    // most (Fig. 13 is sorted by this metric).
    assert_eq!(names.first(), Some(&"lavaMD"), "{v:?}");
    assert_eq!(names.last(), Some(&"srad_v2"), "{v:?}");
    // And the paper's range statement: checking is a two-digit percentage of
    // the original program for the heavy cases.
    assert!(v.last().expect("non-empty").1 > 0.30);
    assert!(v.first().expect("non-empty").1 < 0.25);
}
