//! Detect-and-recover pipeline properties, end to end at the workspace
//! level: the bounded retry ladder terminates even when every attempt
//! hangs, warp-level replay actually fires and converts DUEs, recovery is
//! a pure function of `(seed, trial)`, and the 3x3 acceptance matrix
//! (workloads x schemes) shows nonzero DUE->recovered conversion with zero
//! recovery-induced SDCs.

use proptest::prelude::*;
use swapcodes_core::{PredictorSet, Scheme};
use swapcodes_inject::arch::ArchCampaign;
use swapcodes_inject::oracle::recovery_oracle;
use swapcodes_inject::{run_recovery_campaign, RecoveryCampaignConfig};
use swapcodes_isa::{KernelBuilder, Op, Reg, SpecialReg, Src};
use swapcodes_sim::exec::{ExecConfig, ExecError};
use swapcodes_sim::recovery::{RecoveryConfig, RecoveryEngine, RecoveryOutcome};
use swapcodes_sim::{GlobalMemory, Launch};
use swapcodes_workloads::by_name;

/// A kernel that spins forever: every rung of the ladder must exhaust its
/// fuel, and the engine must still return a structured `Unrecoverable`
/// verdict instead of hanging the host.
#[test]
fn retry_ladder_terminates_when_every_attempt_hangs() {
    let mut k = KernelBuilder::new("spin-forever");
    k.push(Op::S2R {
        d: Reg(0),
        sr: SpecialReg::TidX,
    });
    let top = k.label();
    k.bind(top);
    k.push(Op::IAdd {
        d: Reg(1),
        a: Reg(1),
        b: Src::Imm(1),
    });
    k.branch_to(top);
    k.push(Op::Exit);
    let kernel = k.finish();

    let fuel = 1_500u64;
    let max_relaunches = 2u32;
    let mut engine = RecoveryEngine::new(ExecConfig {
        fuel: Some(fuel),
        ..ExecConfig::default()
    });
    engine.config = RecoveryConfig {
        max_relaunches,
        ..RecoveryConfig::default()
    };
    let input = GlobalMemory::new(64);
    let run = engine.run(&kernel, Launch::grid(1, 32), &input);
    match run.outcome {
        RecoveryOutcome::Unrecoverable { attempts } => {
            assert_eq!(attempts, max_relaunches, "every rung must be tried once");
        }
        other => panic!("a permanent hang cannot be recovered: {other:?}"),
    }
    match run.error {
        Some(ExecError::Hang { steps }) => assert!(steps > fuel),
        other => panic!("residual error must be the structured hang: {other:?}"),
    }
}

/// Warp-level replay is exercised by real campaigns: under Swap-ECC, DUE
/// detections roll the faulting warp back to its checkpoint and the cell's
/// stats show nonzero rollbacks alongside the recovered trials.
#[test]
fn warp_replay_fires_and_recovers_dues() {
    let w = by_name("matmul").expect("matmul workload");
    let cell = run_recovery_campaign(
        &w,
        Scheme::SwapEcc,
        32,
        0xF12E,
        &RecoveryCampaignConfig::default(),
    )
    .expect("swap-ecc applies to matmul");
    assert!(
        cell.outcomes.recovered_replay > 0,
        "expected warp-replay recoveries: {:?}",
        cell.outcomes
    );
    assert!(cell.stats.replays > 0, "stats must count rollbacks");
    assert!(cell.stats.checkpoints > 0, "replay implies checkpoints");
    assert_eq!(
        cell.outcomes.miscorrected, 0,
        "safe ladder never miscorrects"
    );
    assert_eq!(cell.outcomes.sdc, 0, "recovery must not launder SDCs");
    assert!(
        cell.overhead_cycles > 0,
        "recovery work must be billed cycles"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Recovery is deterministic: for any `(seed, trial)` the recovered
    /// outcome and the work stats replay identically, so any campaign
    /// anomaly can be reproduced from its trial index alone.
    #[test]
    fn recovery_is_pure_in_seed_and_trial(
        seed in 0u64..1_000_000,
        trial in 0u64..64,
    ) {
        let w = by_name("kmeans").expect("kmeans workload");
        let campaign = ArchCampaign::prepare(&w, Scheme::SwapEcc, seed).expect("prepare");
        let rcfg = RecoveryConfig::default();
        let a = campaign.run_trial_recovering(trial, &rcfg);
        let b = campaign.run_trial_recovering(trial, &rcfg);
        prop_assert_eq!(a, b, "recovery diverged under a fixed seed");
    }
}

/// The acceptance matrix: >=3 workloads x >=3 schemes through the recovery
/// oracle. Every `Recovered` grant already compared the output word-for-word
/// against golden, so nonzero `recovered` with empty `miscorrections` and
/// `escapes` is a machine-checked proof that the ladder converts DUEs
/// without ever inventing an SDC.
#[test]
fn acceptance_matrix_recovers_without_inventing_sdcs() {
    let rcfg = RecoveryConfig::default();
    let mut recovered = 0u64;
    for name in ["matmul", "kmeans", "b+tree"] {
        let w = by_name(name).expect("workload");
        for scheme in [
            Scheme::SwDup,
            Scheme::SwapEcc,
            Scheme::SwapPredict(PredictorSet::MAD),
        ] {
            let v = recovery_oracle(&w, scheme, 25, 0xACCE97, &rcfg).expect("prepare");
            assert!(
                v.is_clean_and_sound(),
                "{name} x {scheme:?}: {v}\n{}",
                v.report
            );
            recovered += v.recovered;
        }
    }
    assert!(recovered > 0, "matrix must show DUE->recovered conversion");
}
