//! Architecture-level coverage campaigns across workloads and schemes — the
//! system-level counterpart of the paper's neutron-beam observation that
//! duplication cuts SDC by an order of magnitude.

use swapcodes_core::{PredictorSet, Scheme};
use swapcodes_inject::arch::arch_campaign;
use swapcodes_workloads::by_name;

#[test]
fn protected_schemes_have_zero_sdc_on_single_bit_faults() {
    // Small deterministic campaigns across three differently-shaped
    // workloads; single-bit pipeline faults cannot escape SEC-DED-backed
    // Swap-ECC/Swap-Predict or SW-Dup's checks.
    for name in ["kmeans", "b+tree", "matmul"] {
        let w = by_name(name).expect("workload");
        for scheme in [
            Scheme::SwDup,
            Scheme::SwapEcc,
            Scheme::SwapPredict(PredictorSet::MAD),
        ] {
            let out = arch_campaign(&w, scheme, 10, 0xC0FE);
            assert_eq!(out.sdc, 0, "{name} under {scheme:?}: {out:?}");
        }
    }
}

#[test]
fn baseline_sdc_exceeds_protected_sdc() {
    let w = by_name("kmeans").expect("kmeans");
    let base = arch_campaign(&w, Scheme::Baseline, 30, 0xBEE);
    let prot = arch_campaign(&w, Scheme::SwapEcc, 30, 0xBEE);
    assert!(base.sdc > 0, "baseline shows SDC: {base:?}");
    assert_eq!(prot.sdc, 0, "swap-ecc contains everything: {prot:?}");
    assert!(prot.coverage() >= base.coverage());
}

#[test]
fn swdup_detection_is_trap_based_swapecc_is_due_based() {
    let w = by_name("b+tree").expect("b+tree");
    let dup = arch_campaign(&w, Scheme::SwDup, 16, 0xD1CE);
    let swap = arch_campaign(&w, Scheme::SwapEcc, 16, 0xD1CE);
    assert_eq!(
        dup.due, 0,
        "SW-Dup has no register-file protection: {dup:?}"
    );
    assert_eq!(swap.trap, 0, "Swap-ECC emits no checking traps: {swap:?}");
    assert!(dup.trap > 0);
    assert!(swap.due > 0);
}

#[test]
fn interthread_campaign_contains_faults() {
    let w = by_name("pathf").expect("pathfinder");
    let out = arch_campaign(&w, Scheme::InterThread { checked: true }, 12, 0x17);
    assert_eq!(
        out.sdc, 0,
        "shuffle checks contain store-visible faults: {out:?}"
    );
}
