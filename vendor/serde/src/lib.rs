//! Offline drop-in subset of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` widely but has no
//! serializer crate, so only the derive macro names need to resolve; they
//! expand to nothing (see `serde_derive`). If a future change introduces an
//! actual serializer, replace this stub with the real crate.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
