//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` entry points the workspace actually uses are
//! implemented here: [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64,
//! the same generator rand 0.8 uses on 64-bit targets), the [`Rng`] /
//! [`SeedableRng`] traits, and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the only hard requirement downstream (campaign results
//! must be reproducible from a seed), and every generator here is a pure
//! function of its seed.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (high bits of the 64-bit output).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
int_range_impl!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                i8 => i64, i16 => i64, i32 => i64, i64 => i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}
impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, span)` (`span == 0` means the full 2^64
/// range) via Lemire's widening-multiply with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Rejected: the slice of the 64-bit space mapping to this bucket is
        // over-represented; redraw.
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ (what rand 0.8 uses for
    /// `SmallRng` on 64-bit platforms), seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for integer seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates, matching rand's descending order).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
            let z: u8 = rng.gen_range(2u8..=8);
            assert!((2..=8).contains(&z));
            let f: f32 = rng.gen_range(1.0f32..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
