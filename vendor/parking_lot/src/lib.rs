//! Offline drop-in subset of the `parking_lot` API, backed by the standard
//! library's locks. `parking_lot`'s signature difference from `std` — locks
//! that return guards directly instead of `LockResult` — is preserved;
//! poisoning is translated into a panic, which matches how every caller in
//! this workspace treats poisoned locks (they never recover from a panicked
//! critical section).

#![forbid(unsafe_code)]

use std::sync;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
