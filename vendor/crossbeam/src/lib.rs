//! Offline drop-in subset of the `crossbeam` API used by this workspace:
//! [`scope`]d threads, implemented over `std::thread::scope` (stable since
//! Rust 1.63, which post-dates crossbeam's scoped-thread API).
//!
//! Semantic difference from real crossbeam: a panic in a spawned thread
//! propagates out of [`scope`] (as `std` scoped threads do) instead of being
//! captured in the returned `Result`. Every caller in this workspace
//! immediately `expect`s the `Ok` value, so the observable behavior — abort
//! the program with the worker's panic message — is the same.

#![forbid(unsafe_code)]

/// Scoped-thread namespace, mirroring `crossbeam::thread`.
pub mod thread {
    use std::thread as std_thread;

    /// Error type carried by the [`scope`] result (never constructed here;
    /// see the crate docs on panic propagation).
    pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle passed to the closure and to each spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle,
        /// matching crossbeam's nested-spawn-capable signature.
        pub fn spawn<F, T>(&self, f: F) -> std_thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
