//! Offline drop-in subset of the `proptest` API.
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]` and both
//! `name: Type` and `name in strategy` parameter forms), [`Strategy`] with
//! `prop_map`, `any::<T>()`, integer/float range strategies, tuple
//! strategies, `prop_oneof!`, `prop::collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: generation is driven by a fixed
//! deterministic seed (no `PROPTEST_*` env handling, no persisted failure
//! files) and failing cases are reported without shrinking. Both are
//! acceptable here — the tests are CI gates, not exploratory fuzzing, and
//! determinism is a feature for reproducibility.

#![forbid(unsafe_code)]

use std::fmt;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before the test aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        Self::Fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Reject => write!(f, "rejected by prop_assume!"),
            Self::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// The deterministic generator threaded through strategies.
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::SmallRng);

impl TestRng {
    /// Deterministic generator for one test run.
    #[must_use]
    pub fn deterministic(seed: u64) -> Self {
        use rand::SeedableRng;
        Self(rand::rngs::SmallRng::seed_from_u64(seed))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        strategy::Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw a value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_rand {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
arbitrary_via_rand!(bool, u8, u16, u32, u64, usize, i32, i64, f32, f64);

/// The `any::<T>()` whole-domain strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy generating any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy combinators and adapters.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build from the alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Box a strategy for use in a [`Union`] (monomorphization helper for
    /// the `prop_oneof!` expansion).
    #[must_use]
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub use strategy::Just;

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for variable-length vectors.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vector of `element`-generated values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[doc(hidden)]
pub mod __runner {
    use super::{ProptestConfig, TestCaseError, TestRng};

    /// Drive one property test: repeatedly generate-and-run until the
    /// configured number of cases passes.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case
    /// or when `prop_assume!` rejects too many inputs.
    pub fn run(
        name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        // Stable per-test seed: deterministic across runs and processes.
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        });
        let mut rng = TestRng::deterministic(seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected < config.max_global_rejects,
                        "{name}: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed after {passed} cases: {msg}")
                }
            }
        }
    }
}

/// Define property tests (see crate docs for the supported subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::__runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    $crate::__proptest_bind! { __rng, ($($params)*) }
                    let mut __case = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __case()
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, ()) => {};
    ($rng:ident, ($name:ident in $strat:expr, $($rest:tt)*)) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind! { $rng, ($($rest)*) }
    };
    ($rng:ident, ($name:ident in $strat:expr)) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident, ($name:ident : $ty:ty, $($rest:tt)*)) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $crate::__proptest_bind! { $rng, ($($rest)*) }
    };
    ($rng:ident, ($name:ident : $ty:ty)) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// Property-test assertion: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assert_eq failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assert_eq failed: {:?} != {:?}: {}",
                    __a,
                    __b,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assert_ne failed: both {:?}", __a),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assert_ne failed: both {:?}: {}",
                    __a,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Reject the current inputs without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a: u32, b: u32) {
            prop_assert_eq!(u64::from(a) + u64::from(b), u64::from(b) + u64::from(a));
        }

        #[test]
        fn ranges_and_assume(x in 10u32..20, y in 0u8..=4) {
            prop_assume!(x != 15);
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 4, "y was {}", y);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_map_and_vec(v in prop::collection::vec(
            prop_oneof![
                (0u8..4, 0u8..4).prop_map(|(a, b)| u32::from(a) + u32::from(b)),
                (10u32..12).prop_map(|x| x * 2),
            ],
            1..8,
        )) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x <= 7 || (20..24).contains(&x));
            }
        }
    }
}
