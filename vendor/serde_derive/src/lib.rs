//! Offline no-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace annotates many types with `#[derive(Serialize,
//! Deserialize)]` but never calls any serde API (there is no serializer
//! dependency), so the derives can legally expand to nothing. The
//! `attributes(serde)` registration keeps any future `#[serde(...)]` field
//! attributes from being rejected by the compiler.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
