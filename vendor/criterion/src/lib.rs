//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Provides the `Criterion` / benchmark-group / `Bencher` surface the
//! workspace's micro benches use, with a simple adaptive timer instead of
//! criterion's statistical machinery: each benchmark is warmed up, then
//! iterated until a wall-clock budget is reached, and the mean time per
//! iteration is printed. Good enough to spot order-of-magnitude regressions
//! offline; swap in the real crate for publication-quality statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let budget = self.measurement_budget;
        run_one(&id.into(), budget, f);
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Hint for criterion's sampler; accepted and ignored here (the adaptive
    /// timer already bounds wall-clock per benchmark).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark one function.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.criterion.measurement_budget, f);
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(id: &str, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
    };
    println!("  {id:<40} {per_iter:>12.2?}/iter ({} iters)", b.iters);
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warmup + calibration: find an iteration count that fills a
        // per-batch time slice, then measure whole batches.
        let mut batch = 1u64;
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            self.iters += batch;
            self.elapsed += dt;
            if start.elapsed() >= self.budget {
                break;
            }
            if dt < Duration::from_millis(10) {
                batch = batch.saturating_mul(2);
            }
        }
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            measurement_budget: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("t");
        g.sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
