//! The §III-B story in action: SEC-DED-DP keeps correcting storage errors
//! while refusing to miscorrect pipeline errors — the failure mode that
//! plain SEC-DED suffers under swapped codewords.
//!
//! Run with: `cargo run --release --example storage_correction`

use swapcodes::ecc::report::{DpWord, PlainCorrectingReporter, SecDedDp};
use swapcodes::ecc::{parity32, HsiaoSecDed};

fn main() {
    let code = HsiaoSecDed::new();
    let plain = PlainCorrectingReporter::new(code.clone());
    let dp = SecDedDp::new_secded_dp();
    let golden = 0x1234_5678_u32;

    println!("register value: {golden:#010x}\n");

    // Case 1: a storage bit flip — both reporters correct it.
    let mut w = dp.encode_original(golden);
    w.data ^= 1 << 9;
    let r = dp.read(w);
    println!("storage error (bit 9 flipped in the SRAM):");
    println!("  SEC-DED-DP: value {:#010x}, event {:?}", r.value, r.event);
    let p = plain.read(w.data, w.check);
    println!(
        "  plain SEC-DED: value {:#010x}, event {:?}\n",
        p.value, p.event
    );

    // Case 2: a single-bit PIPELINE error in the ECC-producing shadow
    // instruction. The data is fine; the check bits describe a wrong value.
    let faulty_shadow = golden ^ (1 << 9);
    let word = DpWord {
        data: golden,
        check: dp.shadow_check(faulty_shadow),
        data_parity: parity32(golden),
    };
    println!("pipeline error (shadow instruction computed {faulty_shadow:#010x}):");
    let p = plain.read(word.data, word.check);
    println!(
        "  plain SEC-DED: value {:#010x}, event {:?}   <-- MISCORRECTION: \
         error-free data was corrupted!",
        p.value, p.event
    );
    let r = dp.read(word);
    println!(
        "  SEC-DED-DP: value {:#010x}, event {:?}   <-- data parity vouches \
         for the data, so the decoder raises a DUE instead",
        r.value, r.event
    );

    // Case 3: exhaustive sweep — DP never miscorrects any single-bit shadow
    // error, and corrects every single-bit storage error.
    let mut storage_ok = 0;
    let mut pipeline_safe = 0;
    for bit in 0..32 {
        let mut w = dp.encode_original(golden);
        w.data ^= 1 << bit;
        if dp.read(w).value == golden {
            storage_ok += 1;
        }
        let word = DpWord {
            data: golden,
            check: dp.shadow_check(golden ^ (1 << bit)),
            data_parity: parity32(golden),
        };
        let r = dp.read(word);
        if r.value == golden && r.event.is_due() {
            pipeline_safe += 1;
        }
    }
    println!(
        "\nexhaustive single-bit sweep: {storage_ok}/32 storage errors corrected, \
         {pipeline_safe}/32 shadow pipeline errors detected without miscorrection."
    );
}
