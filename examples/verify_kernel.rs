//! Static verification: prove a transformed kernel's protection coverage
//! without running a single injection trial, then watch the verifier catch a
//! hand-broken kernel.
//!
//! Run with: `cargo run --release --example verify_kernel`

use swapcodes::core::{apply, Scheme};
use swapcodes::isa::{Instr, Kernel, Op, Role, Src};
use swapcodes::verify::verify;

fn main() {
    // 1. Every scheme's output across the whole workload suite verifies
    //    clean: the dataflow proof that no unprotected path reaches
    //    architectural state.
    println!("== static verification across the workload suite ==");
    for w in swapcodes::workloads::all() {
        for scheme in [
            Scheme::SwDup,
            Scheme::SwapEcc,
            Scheme::SwapPredict(swapcodes::core::PredictorSet::MAD),
            Scheme::InterThread { checked: true },
        ] {
            let Ok(t) = apply(scheme, &w.kernel, w.launch) else {
                // Inter-thread duplication is not transparent (§V): shuffle
                // kernels and full CTAs are legitimately rejected.
                continue;
            };
            let report = verify(scheme, &t.kernel);
            assert!(report.is_clean(), "{}: {report}", w.name);
            println!(
                "  {:<12} {:<12} {:>3}/{:<3} {} covered",
                w.name,
                report.scheme,
                report.coverage.covered,
                report.coverage.points,
                report.coverage.kind,
            );
        }
    }

    // 2. The vulnerability analyzer goes beyond the binary clean/dirty
    //    proof: liveness-derived ACE windows plus a dynamic issue profile
    //    predict per-fault-class coverage and rank the control-state sites
    //    the scheme leaves unprotected (`swapcodes::verify::avf`).
    println!("\n== predicted vulnerability (liveness ACE x scheme windows) ==");
    for w in swapcodes::workloads::all() {
        for scheme in [Scheme::SwDup, Scheme::SwapEcc] {
            let Ok(t) = apply(scheme, &w.kernel, w.launch) else {
                continue;
            };
            let exec = swapcodes::sim::Executor {
                config: swapcodes::sim::exec::ExecConfig {
                    protection: t.protection,
                    cta_limit: Some(1),
                    collect_issue_log: true,
                    ..swapcodes::sim::exec::ExecConfig::default()
                },
            };
            let mut mem = w.build_memory();
            let out = exec
                .run(&t.kernel, t.launch, &mut mem)
                .expect("fault-free profile run");
            let profile =
                swapcodes::verify::avf::DynProfile::from_issue_log(t.kernel.len(), &out.issue_log);
            let report = swapcodes::verify::avf::analyze(scheme, &t.kernel, &profile, None);
            let top = report
                .control_sites
                .first()
                .map(|s| {
                    format!(
                        "top site pc {} {}",
                        s.pc,
                        swapcodes::verify::avf::kind_label(s.kind)
                    )
                })
                .unwrap_or_else(|| "no unprotected sites".to_owned());
            println!(
                "  {:<12} {:<9} reg ACE {:>4.1}%  coverage t/c/s {:>5.1}/{:>4.1}/{:>5.1}%  {top}",
                w.name,
                report.scheme,
                report.reg_ace * 100.0,
                report.transient.coverage * 100.0,
                report.control.coverage * 100.0,
                report.stuck_at.coverage * 100.0,
            );
        }
    }

    // 3. Break a transformed kernel the way a miscompiled pass would —
    //    clobber a shadow with the unverified original — and the verifier
    //    pinpoints the hole with a path witness.
    println!("\n== a deliberately broken SW-Dup kernel ==");
    let w = swapcodes::workloads::by_name("matmul").expect("matmul exists");
    let t = apply(Scheme::SwDup, &w.kernel, w.launch).expect("sw-dup applies");
    let mut instrs = t.kernel.instrs().to_vec();
    // Replace the first shadow with a copy of its original: every later
    // check of that register now compares the original against itself.
    let (pos, orig_def) = instrs
        .iter()
        .enumerate()
        .find_map(|(i, ins)| (ins.role == Role::Shadow).then(|| (i, instrs[i - 1].op.defs()[0])))
        .expect("transformed kernel has shadows");
    let shadow_def = instrs[pos].op.defs()[0];
    instrs[pos] = Instr::new(Op::Mov {
        d: shadow_def,
        a: Src::Reg(orig_def),
    })
    .with_role(Role::Shadow);
    let broken = Kernel::from_instrs("matmul.swdup.broken", instrs);

    let report = verify(Scheme::SwDup, &broken);
    assert!(!report.is_clean());
    print!("{report}");

    // 4. The JSON form feeds CI and dashboards.
    println!("\nmachine-readable: {}", report.to_json());
}
