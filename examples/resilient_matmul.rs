//! Protect the matrix-multiply workload with every scheme and compare
//! performance, code size, register pressure and occupancy — a miniature
//! Fig. 12 for one benchmark.
//!
//! Run with: `cargo run --release --example resilient_matmul`

use swapcodes::core::{apply, PredictorSet, Scheme};
use swapcodes::sim::timing::{simulate_kernel, TimingConfig};
use swapcodes::workloads::by_name;

fn main() {
    let w = by_name("matmul").expect("matmul workload");
    let cfg = TimingConfig::default();

    println!(
        "{:<22} {:>7} {:>6} {:>6} {:>10} {:>9}",
        "scheme", "instrs", "regs", "warps", "cycles", "runtime"
    );
    let mut base_cycles = None;
    for scheme in [
        Scheme::Baseline,
        Scheme::SwDup,
        Scheme::SwapEcc,
        Scheme::SwapPredict(PredictorSet::ADD_SUB),
        Scheme::SwapPredict(PredictorSet::MAD),
        Scheme::SwapPredict(PredictorSet::FP_MAD),
    ] {
        let t = apply(scheme, &w.kernel, w.launch).expect("intra-thread schemes apply");
        let mut mem = w.build_memory();
        let timing =
            simulate_kernel(&t.kernel, t.launch, &mut mem, &cfg).expect("matmul simulates");
        let base = *base_cycles.get_or_insert(timing.cycles);
        println!(
            "{:<22} {:>7} {:>6} {:>6} {:>10} {:>8.2}x",
            scheme.label(),
            t.kernel.len(),
            t.kernel.register_count(),
            timing.occupancy.warps,
            timing.cycles,
            timing.cycles as f64 / base as f64,
        );
    }

    // Inter-thread duplication cannot run matmul at all (1024-thread CTAs).
    match apply(Scheme::InterThread { checked: true }, &w.kernel, w.launch) {
        Err(e) => println!("\ninter-thread duplication: {e}"),
        Ok(_) => unreachable!("matmul CTAs are too large to split"),
    }
}
