//! Explore the Swap-Predict hardware design space: for each residue modulus,
//! show the prediction circuits' area (Table IV style) next to the pipeline
//! error coverage that modulus buys (Fig. 11 style) — the
//! cost/coverage trade-off a designer would actually navigate.
//!
//! Run with: `cargo run --release --example predictor_design_space`

use swapcodes::ecc::CodeKind;
use swapcodes::gates::area::area;
use swapcodes::gates::units::{build_unit, mad_residue_predictor, residue_add_predictor, UnitKind};
use swapcodes::inject::detection::sdc_risk;
use swapcodes::inject::gate::{run_unit_campaign, CampaignConfig};

fn main() {
    // A small injection campaign on the fixed-point MAD (synthetic operand
    // stream; the bench suite uses traced operands).
    let unit = build_unit(UnitKind::FxpMad32);
    let inputs: Vec<[u64; 3]> = (0..600u64)
        .map(|i| {
            [
                i.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF,
                (i.wrapping_mul(0x85EB_CA6B) ^ 0xDEAD) & 0xFFFF_FFFF,
                i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
            ]
        })
        .collect();
    let campaign = run_unit_campaign(&unit, &inputs, &CampaignConfig::default());
    let mad_area = area(build_unit(UnitKind::FxpMad32).netlist()).nand2_total;

    println!("design space: residue check-bit predictors for the 32x32+64 MAD");
    println!("(MAD datapath itself: {mad_area:.0} NAND2)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14}",
        "modulus", "add-pred", "mad-pred", "mad ovh", "MAD SDC risk"
    );
    for a in [2u8, 3, 4, 5, 6, 7, 8] {
        let add_a = area(&residue_add_predictor(a)).nand2_total;
        let mad_a = area(&mad_residue_predictor(a)).nand2_total;
        let tally = sdc_risk(&campaign, CodeKind::Residue { a });
        println!(
            "{:>8} {:>9.0} ge {:>9.0} ge {:>11.2}% {:>14}",
            (1u32 << a) - 1,
            add_a,
            mad_a,
            mad_a / mad_area * 100.0,
            tally.sdc_risk().to_string(),
        );
    }
    println!(
        "\nlarger moduli buy detection strength for a fraction of a percent \
         of datapath area — the economics behind Swap-Predict (§IV-D)."
    );
}
