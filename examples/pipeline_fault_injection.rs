//! End-to-end architecture-level fault injection: sweep random pipeline
//! faults through a workload under each protection scheme and tabulate the
//! trap / DUE / crash / hang / masked / SDC outcomes.
//!
//! Run with: `cargo run --release --example pipeline_fault_injection [trials]`

use swapcodes::core::{PredictorSet, Scheme};
use swapcodes::inject::arch::arch_campaign;
use swapcodes::workloads::by_name;

fn main() {
    let trials: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let w = by_name("matmul").expect("matmul workload");
    println!(
        "injecting {trials} random single-bit pipeline faults per scheme into '{}'\n",
        w.name
    );
    println!(
        "{:<14} {:>5} {:>5} {:>6} {:>5} {:>7} {:>5} {:>9}",
        "scheme", "trap", "due", "crash", "hang", "masked", "sdc", "coverage"
    );
    for (i, scheme) in [
        Scheme::Baseline,
        Scheme::SwDup,
        Scheme::SwapEcc,
        Scheme::SwapPredict(PredictorSet::MAD),
    ]
    .into_iter()
    .enumerate()
    {
        let out = arch_campaign(&w, scheme, trials, 0xFA57 + i as u64);
        println!(
            "{:<14} {:>5} {:>5} {:>6} {:>5} {:>7} {:>5} {:>8.1}%",
            scheme.label(),
            out.trap,
            out.due,
            out.crash,
            out.hang,
            out.masked,
            out.sdc,
            out.coverage() * 100.0
        );
    }
    println!(
        "\ncoverage = detected / unmasked (hangs are timeout-detected by the \
         watchdog). The baseline detects nothing it doesn't crash or hang \
         on; every duplication scheme contains the rest."
    );
}
