//! Quickstart: protect a kernel with Swap-ECC and watch the register-file
//! ECC catch a pipeline error that software alone would have missed.
//!
//! Run with: `cargo run --release --example quickstart`

use swapcodes::core::{apply, Scheme};
use swapcodes::isa::{KernelBuilder, MemSpace, MemWidth, Op, Reg, SpecialReg, Src};
use swapcodes::sim::exec::{Detection, ExecConfig, Executor};
use swapcodes::sim::{FaultSpec, GlobalMemory, Launch};

fn main() {
    // A tiny kernel: out[tid] = tid * 3 + 7.
    let mut k = KernelBuilder::new("axpb");
    k.push(Op::S2R {
        d: Reg(0),
        sr: SpecialReg::TidX,
    });
    k.push(Op::IMul {
        d: Reg(1),
        a: Reg(0),
        b: Src::Imm(3),
    });
    k.push(Op::IAdd {
        d: Reg(2),
        a: Reg(1),
        b: Src::Imm(7),
    });
    k.push(Op::Shl {
        d: Reg(3),
        a: Reg(0),
        b: Src::Imm(2),
    });
    k.push(Op::St {
        space: MemSpace::Global,
        addr: Reg(3),
        offset: 0,
        v: Reg(2),
        width: MemWidth::W32,
    });
    k.push(Op::Exit);
    let kernel = k.finish();
    let launch = Launch::grid(1, 32);

    // 1. The un-protected baseline silently corrupts under a pipeline fault.
    let fault = FaultSpec::single_bit(1, /* lane */ 5, /* bit */ 4);
    let mut mem = GlobalMemory::new(256);
    let exec = Executor {
        config: ExecConfig {
            fault: Some(fault),
            ..ExecConfig::default()
        },
    };
    let out = exec
        .run(&kernel, launch, &mut mem)
        .expect("tiny kernel executes");
    println!("baseline:  detection = {:?}", out.detection);
    println!(
        "baseline:  out[5] = {} (should be {}) -> silent data corruption!",
        mem.read(20),
        5 * 3 + 7
    );

    // 2. Swap-ECC: the compiler duplicates each instruction with an ECC-only
    //    shadow write; the register file detects the mismatch on the next
    //    read — no checking instructions, no shadow registers.
    let t = apply(Scheme::SwapEcc, &kernel, launch).expect("swap-ecc always applies");
    println!(
        "\nswap-ecc transformed kernel ({} -> {} instructions, still {} registers):",
        kernel.len(),
        t.kernel.len(),
        t.kernel.register_count()
    );
    for (i, instr) in t.kernel.instrs().iter().enumerate() {
        println!("  {i:2}: {instr}");
    }

    let mut mem = GlobalMemory::new(256);
    let exec = Executor {
        config: ExecConfig {
            protection: t.protection,
            fault: Some(fault),
            ..ExecConfig::default()
        },
    };
    let out = exec
        .run(&t.kernel, t.launch, &mut mem)
        .expect("tiny kernel executes");
    match out.detection {
        Detection::Due {
            pipeline_suspected,
            at,
        } => println!(
            "\nswap-ecc: register-file DUE at dynamic instruction {at} \
             (pipeline_suspected = {pipeline_suspected}) — error contained \
             before reaching memory."
        ),
        other => println!("\nswap-ecc: unexpected outcome {other:?}"),
    }
}
